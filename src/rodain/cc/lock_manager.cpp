#include "rodain/cc/lock_manager.hpp"

#include <algorithm>
#include <cassert>

namespace rodain::cc {

namespace {
void note_object(std::unordered_map<TxnId, std::vector<ObjectId>>& map,
                 TxnId txn, ObjectId oid) {
  auto& v = map[txn];
  if (std::find(v.begin(), v.end(), oid) == v.end()) v.push_back(oid);
}
}  // namespace

LockManager::AcquireResult LockManager::acquire(ObjectId oid, TxnId txn,
                                                LockMode mode, PriorityKey prio) {
  AcquireResult result;
  Entry& e = table_[oid];

  // Re-entrant / upgrade handling.
  auto self = std::find_if(e.holders.begin(), e.holders.end(),
                           [&](const Holder& h) { return h.txn == txn; });
  if (self != e.holders.end()) {
    if (self->mode == LockMode::kExclusive || mode == LockMode::kShared) {
      return result;  // already strong enough
    }
    // Shared -> exclusive upgrade: conflicts are the *other* shared holders.
    std::vector<const Holder*> others;
    for (const Holder& h : e.holders) {
      if (h.txn != txn) others.push_back(&h);
    }
    const bool beats_all = std::all_of(
        others.begin(), others.end(),
        [&](const Holder* h) { return prio.higher_than(h->prio); });
    if (others.empty() || beats_all) {
      for (const Holder* h : others) result.victims.push_back(h->txn);
      std::erase_if(e.holders, [&](const Holder& h) { return h.txn != txn; });
      e.holders.front().mode = LockMode::kExclusive;
      e.holders.front().prio = prio;
      return result;
    }
    result.decision = Access::kBlocked;
    e.waiters.push_back(Waiter{txn, LockMode::kExclusive, prio});
    std::sort(e.waiters.begin(), e.waiters.end(),
              [](const Waiter& a, const Waiter& b) { return a.prio.higher_than(b.prio); });
    return result;
  }

  const bool no_conflict =
      e.holders.empty() ||
      (mode == LockMode::kShared &&
       std::all_of(e.holders.begin(), e.holders.end(), [](const Holder& h) {
         return h.mode == LockMode::kShared;
       }));
  // Even a compatible request must queue behind a higher-priority waiter
  // (otherwise shared requests could starve an urgent exclusive one).
  const bool queue_clear =
      e.waiters.empty() || prio.higher_than(e.waiters.front().prio);

  if (no_conflict && queue_clear) {
    e.holders.push_back(Holder{txn, mode, prio});
    note_object(txn_objects_, txn, oid);
    return result;
  }

  // High Priority rule: beat every conflicting holder or wait.
  std::vector<const Holder*> conflicting;
  for (const Holder& h : e.holders) {
    if (!compatible(h.mode, mode)) conflicting.push_back(&h);
  }
  const bool beats_all =
      !conflicting.empty() &&
      std::all_of(conflicting.begin(), conflicting.end(),
                  [&](const Holder* h) { return prio.higher_than(h->prio); });
  if (beats_all && queue_clear) {
    for (const Holder* h : conflicting) result.victims.push_back(h->txn);
    std::erase_if(e.holders, [&](const Holder& h) {
      return !compatible(h.mode, mode);
    });
    e.holders.push_back(Holder{txn, mode, prio});
    note_object(txn_objects_, txn, oid);
    // The victims' lock state is cleaned up when the engine aborts them
    // (release_all); their holder entries on THIS object are gone already,
    // so release_all tolerates missing entries.
    return result;
  }

  result.decision = Access::kBlocked;
  e.waiters.push_back(Waiter{txn, mode, prio});
  std::sort(e.waiters.begin(), e.waiters.end(),
            [](const Waiter& a, const Waiter& b) { return a.prio.higher_than(b.prio); });
  note_object(txn_objects_, txn, oid);
  return result;
}

LockManager::ReleaseResult LockManager::release_all(TxnId txn) {
  ReleaseResult result;
  // Releasing one transaction can promote waiters that displace further
  // holders (HP rule); displaced holders' own locks must cascade too, or a
  // high-priority waiter could stay parked behind a doomed holder forever.
  std::vector<TxnId> pending{txn};
  std::size_t cursor = 0;
  while (cursor < pending.size()) {
    const TxnId current = pending[cursor++];
    auto it = txn_objects_.find(current);
    if (it == txn_objects_.end()) continue;
    const std::vector<ObjectId> objects = std::move(it->second);
    txn_objects_.erase(it);
    for (ObjectId oid : objects) {
      auto te = table_.find(oid);
      if (te == table_.end()) continue;
      Entry& e = te->second;
      std::erase_if(e.holders, [&](const Holder& h) { return h.txn == current; });
      std::erase_if(e.waiters, [&](const Waiter& w) { return w.txn == current; });
      std::vector<TxnId> victims;
      promote_waiters(oid, e, result.woken, victims);
      for (TxnId v : victims) {
        result.victims.push_back(v);
        pending.push_back(v);  // cascade: release the victim's locks too
      }
      if (e.holders.empty() && e.waiters.empty()) table_.erase(te);
    }
  }
  // A transaction both woken and then victimized in the same cascade is a
  // victim, not a grantee.
  std::erase_if(result.woken, [&](TxnId w) {
    return std::find(result.victims.begin(), result.victims.end(), w) !=
           result.victims.end();
  });
  return result;
}

void LockManager::promote_waiters(ObjectId oid, Entry& e,
                                  std::vector<TxnId>& woken,
                                  std::vector<TxnId>& victims) {
  while (!e.waiters.empty()) {
    const Waiter w = e.waiters.front();
    std::vector<TxnId> conflicting;
    bool beats_all = true;
    for (const Holder& h : e.holders) {
      if (h.txn == w.txn) continue;  // upgrade: own shared hold is fine
      if (!compatible(h.mode, w.mode)) {
        conflicting.push_back(h.txn);
        beats_all &= w.prio.higher_than(h.prio);
      }
    }
    if (!conflicting.empty() && !beats_all) break;
    if (!conflicting.empty()) {
      // HP rule at promotion time: the waiter outranks every remaining
      // conflicting holder; displace them.
      for (TxnId v : conflicting) victims.push_back(v);
      std::erase_if(e.holders, [&](const Holder& h) {
        return std::find(conflicting.begin(), conflicting.end(), h.txn) !=
               conflicting.end();
      });
    }
    auto self = std::find_if(e.holders.begin(), e.holders.end(),
                             [&](const Holder& h) { return h.txn == w.txn; });
    if (self != e.holders.end()) {
      self->mode = LockMode::kExclusive;  // completed upgrade
    } else {
      e.holders.push_back(Holder{w.txn, w.mode, w.prio});
    }
    note_object(txn_objects_, w.txn, oid);
    woken.push_back(w.txn);
    e.waiters.erase(e.waiters.begin());
  }
}

bool LockManager::holds(ObjectId oid, TxnId txn) const {
  auto it = table_.find(oid);
  if (it == table_.end()) return false;
  return std::any_of(it->second.holders.begin(), it->second.holders.end(),
                     [&](const Holder& h) { return h.txn == txn; });
}

void LockManager::for_each_lock(
    const std::function<void(ObjectId, std::span<const TxnId>,
                             std::span<const TxnId>)>& fn) const {
  for (const auto& [oid, e] : table_) {
    std::vector<TxnId> holders;
    std::vector<TxnId> waiters;
    for (const Holder& h : e.holders) holders.push_back(h.txn);
    for (const Waiter& w : e.waiters) waiters.push_back(w.txn);
    fn(oid, holders, waiters);
  }
}

std::size_t LockManager::waiting_requests() const {
  std::size_t n = 0;
  for (const auto& [oid, e] : table_) n += e.waiters.size();
  return n;
}

}  // namespace rodain::cc
