#include "rodain/sim/simulation.hpp"

#include <cassert>

namespace rodain::sim {

EventId Simulation::schedule_at(TimePoint t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  queue_.push(Entry{t, id});
  handlers_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

bool Simulation::cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);  // heap entry becomes a tombstone, skipped in step()
  --live_;
  return true;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    auto it = handlers_.find(e.id);
    if (it == handlers_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    queue_.pop();
    now_ = e.time;
    auto fn = std::move(it->second);
    handlers_.erase(it);
    --live_;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

void Simulation::run_until(TimePoint until) {
  while (!queue_.empty()) {
    // Peek past tombstones to find the next live event time.
    Entry e = queue_.top();
    if (!handlers_.contains(e.id)) {
      queue_.pop();
      continue;
    }
    if (e.time > until) break;
    step();
  }
  if (now_ < until) now_ = until;
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace rodain::sim
