// Discrete-event simulation kernel.
//
// This substitutes for the paper's Chorus/ClassiX testbed: all time-consuming
// activities (CPU service, network latency, disk writes) become events on a
// single virtual timeline, so an entire 10 000-transaction session runs in
// milliseconds of wall time and is bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "rodain/common/clock.hpp"
#include "rodain/common/time.hpp"

namespace rodain::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Virtual-time event loop. Events with equal timestamps fire in scheduling
/// order (stable), which keeps simulations deterministic.
class Simulation final : public Clock {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] TimePoint now() const override { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now). Returns a handle
  /// usable with cancel().
  EventId schedule_at(TimePoint t, std::function<void()> fn);
  EventId schedule_after(Duration d, std::function<void()> fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled. Safe to call from inside event handlers.
  bool cancel(EventId id);

  /// Run until the queue drains or virtual time would pass `until`.
  void run_until(TimePoint until);
  /// Run until the queue drains completely.
  void run();
  /// Fire at most one event; returns false when the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return live_; }
  [[nodiscard]] std::uint64_t fired_events() const { return fired_; }

 private:
  struct Entry {
    TimePoint time;
    EventId id;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return id > o.id;  // ids are monotone, so equal-time FIFO
    }
  };

  TimePoint now_{TimePoint::origin()};
  EventId next_id_{1};
  std::size_t live_{0};
  std::uint64_t fired_{0};
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace rodain::sim
