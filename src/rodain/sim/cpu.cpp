#include "rodain/sim/cpu.hpp"

#include <cassert>

namespace rodain::sim {

SimCpu::JobId SimCpu::submit(PriorityKey key, Duration cost,
                             std::function<void()> on_complete) {
  const JobId id = next_job_++;
  Job job{key, cost, std::move(on_complete)};
  if (!running_) {
    start(id, std::move(job));
    return id;
  }
  if (key.higher_than(running_->job.key)) {
    auto [rid, rjob] = stop_running();
    const PriorityKey rkey = rjob.key;
    ready_index_.emplace(rid, rkey);
    ready_.emplace(ReadyKey{rkey, rid}, std::move(rjob));
    start(id, std::move(job));
    return id;
  }
  ready_index_.emplace(id, key);
  ready_.emplace(ReadyKey{key, id}, std::move(job));
  return id;
}

bool SimCpu::cancel(JobId id) {
  if (running_ && running_->id == id) {
    auto [rid, job] = stop_running();
    (void)rid;
    (void)job;  // dropped
    dispatch_next();
    return true;
  }
  auto it = ready_index_.find(id);
  if (it == ready_index_.end()) return false;
  ready_.erase(ReadyKey{it->second, id});
  ready_index_.erase(it);
  return true;
}

bool SimCpu::reprioritize(JobId id, PriorityKey key) {
  auto it = ready_index_.find(id);
  if (it == ready_index_.end()) return false;
  auto node = ready_.extract(ReadyKey{it->second, id});
  assert(!node.empty());
  Job job = std::move(node.mapped());
  job.key = key;
  ready_index_.erase(it);

  if (running_ && key.higher_than(running_->job.key)) {
    auto [rid, rjob] = stop_running();
    const PriorityKey rkey = rjob.key;
    ready_index_.emplace(rid, rkey);
    ready_.emplace(ReadyKey{rkey, rid}, std::move(rjob));
    start(id, std::move(job));
  } else if (!running_) {
    start(id, std::move(job));
  } else {
    ready_index_.emplace(id, key);
    ready_.emplace(ReadyKey{key, id}, std::move(job));
  }
  return true;
}

Duration SimCpu::busy_time() const {
  Duration total = consumed_;
  if (running_) total += sim_.now() - running_->started;
  return total;
}

void SimCpu::dispatch_next() {
  if (running_ || ready_.empty()) return;
  auto node = ready_.extract(ready_.begin());
  const JobId id = node.key().id;
  Job job = std::move(node.mapped());
  ready_index_.erase(id);
  start(id, std::move(job));
}

void SimCpu::start(JobId id, Job job) {
  assert(!running_);
  const TimePoint started = sim_.now();
  const Duration remaining = job.remaining;
  running_.emplace(Running{id, std::move(job), started, kInvalidEvent});
  running_->completion_event =
      sim_.schedule_after(remaining, [this] { on_run_complete(); });
}

std::pair<SimCpu::JobId, SimCpu::Job> SimCpu::stop_running() {
  assert(running_);
  sim_.cancel(running_->completion_event);
  const Duration used = sim_.now() - running_->started;
  consumed_ += used;
  Job job = std::move(running_->job);
  job.remaining -= used;
  if (job.remaining < Duration::zero()) job.remaining = Duration::zero();
  const JobId id = running_->id;
  running_.reset();
  return {id, std::move(job)};
}

void SimCpu::on_run_complete() {
  assert(running_);
  consumed_ += running_->job.remaining;
  auto fn = std::move(running_->job.on_complete);
  running_.reset();
  dispatch_next();
  if (fn) fn();
}

}  // namespace rodain::sim
