// Simulated single CPU with preemptive priority scheduling.
//
// The paper's prototype runs on one Pentium Pro; transaction operations are
// CPU bursts. Jobs carry a PriorityKey (criticality, deadline) — an arriving
// higher-priority job preempts the running one exactly, charging it only for
// the CPU it actually consumed. This models the modified-EDF processor.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>

#include "rodain/common/types.hpp"
#include "rodain/sim/simulation.hpp"

namespace rodain::sim {

class SimCpu {
 public:
  using JobId = std::uint64_t;
  static constexpr JobId kInvalidJob = 0;

  explicit SimCpu(Simulation& sim) : sim_(sim) {}
  SimCpu(const SimCpu&) = delete;
  SimCpu& operator=(const SimCpu&) = delete;

  /// Enqueue a CPU burst of `cost`; `on_complete` fires (at virtual time)
  /// when the burst has received `cost` of CPU. Preempts the running job if
  /// `key` has higher priority.
  JobId submit(PriorityKey key, Duration cost, std::function<void()> on_complete);

  /// Remove a queued or running job (e.g. its transaction was aborted).
  /// Returns false if it already completed or is unknown.
  bool cancel(JobId id);

  /// Raise (or change) the priority of a queued job; may trigger preemption.
  bool reprioritize(JobId id, PriorityKey key);

  [[nodiscard]] std::size_t queued_jobs() const { return ready_.size(); }
  [[nodiscard]] bool busy() const { return running_.has_value(); }
  /// Total CPU time consumed by completed or cancelled work so far.
  [[nodiscard]] Duration busy_time() const;

 private:
  struct Job {
    PriorityKey key;
    Duration remaining;
    std::function<void()> on_complete;
  };

  /// Ready-queue ordering key: priority first, then job id so that two jobs
  /// with identical PriorityKeys (e.g. successive steps of one transaction)
  /// coexist and run FIFO instead of colliding in the map.
  struct ReadyKey {
    PriorityKey prio;
    JobId id;
  };
  struct ReadyOrder {
    bool operator()(const ReadyKey& a, const ReadyKey& b) const {
      if (a.prio.higher_than(b.prio)) return true;
      if (b.prio.higher_than(a.prio)) return false;
      return a.id < b.id;
    }
  };

  void dispatch_next();
  void start(JobId id, Job job);
  /// Stop the running job, charging it for consumed CPU; returns it.
  std::pair<JobId, Job> stop_running();
  void on_run_complete();

  Simulation& sim_;
  JobId next_job_{1};
  std::map<ReadyKey, Job, ReadyOrder> ready_;
  std::unordered_map<JobId, PriorityKey> ready_index_;

  struct Running {
    JobId id;
    Job job;
    TimePoint started;
    EventId completion_event;
  };
  std::optional<Running> running_;
  Duration consumed_{Duration::zero()};
};

}  // namespace rodain::sim
