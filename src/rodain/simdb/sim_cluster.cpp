#include "rodain/simdb/sim_cluster.hpp"

#include <cassert>

namespace rodain::simdb {

SimCluster::SimCluster(sim::Simulation& sim, SimClusterConfig config)
    : sim_(sim), config_(config) {
  node_a_ = std::make_unique<SimNode>(sim_, "node-a", 1, config_.node);
  if (config_.two_nodes) {
    node_b_ = std::make_unique<SimNode>(sim_, "node-b", 2, config_.node);
    link_ = std::make_unique<net::SimLink>(sim_, config_.link);
    if (config_.faults) {
      faulty_ = std::make_unique<net::FaultyLink>(sim_, *link_,
                                                  *config_.faults);
      node_a_->connect(faulty_->end_a());
      node_b_->connect(faulty_->end_b());
    } else {
      node_a_->connect(link_->end_a());
      node_b_->connect(link_->end_b());
    }
    node_b_->set_role_change_handler([this](NodeRole r) { on_role_change(r); });
  }
  node_a_->set_role_change_handler([this](NodeRole r) { on_role_change(r); });
}

void SimCluster::populate(
    const std::function<void(storage::ObjectStore&, storage::BPlusTree&)>& loader) {
  loader(node_a_->store(), node_a_->index());
  if (node_b_) loader(node_b_->store(), node_b_->index());
}

void SimCluster::start() {
  if (config_.two_nodes) {
    assert(config_.primary_log_mode == LogMode::kMirror &&
           "two-node cluster ships logs to the mirror");
    node_b_->start_as_mirror(1);
    node_a_->start_as_primary(LogMode::kMirror);
  } else {
    node_a_->start_as_primary(config_.primary_log_mode);
  }
}

SimNode* SimCluster::serving_node() {
  if (preferred_ && preferred_->serving()) return preferred_;
  preferred_ = nullptr;
  if (node_a_->serving()) {
    preferred_ = node_a_.get();
  } else if (node_b_ && node_b_->serving()) {
    preferred_ = node_b_.get();
  }
  return preferred_;
}

void SimCluster::submit(txn::TxnProgram program, SimNode::DoneFn done) {
  SimNode* primary = serving_node();
  if (!primary) {
    ++routing_counters_.submitted;
    ++routing_counters_.system_aborted;
    if (done) {
      TxnResult r;
      r.outcome = TxnOutcome::kSystemAborted;
      r.arrival = r.finish = sim_.now();
      done(r);
    }
    return;
  }
  // Wrap the completion so the first commit after an outage stamps the
  // timeline's time-to-first-commit — the client-observed recovery point.
  primary->submit(std::move(program),
                  [this, done = std::move(done)](const TxnResult& r) {
                    if (r.outcome == TxnOutcome::kCommitted) {
                      availability_.on_commit(sim_.now().us);
                    }
                    if (done) done(r);
                  });
}

void SimCluster::fail_node(SimNode& node) {
  const bool was_serving = node.serving();
  node.fail();
  if (link_) link_->sever();
  if (was_serving && !serving_node()) {
    availability_.set_serving(false, sim_.now().us);
  }
}

void SimCluster::recover_node(SimNode& node) {
  assert(node.role() == NodeRole::kDown);
  if (link_) link_->restore();
  node.recover_and_rejoin();
}

void SimCluster::on_role_change(NodeRole role) {
  if (role != NodeRole::kPrimaryAlone && role != NodeRole::kPrimaryWithMirror) {
    return;
  }
  const std::int64_t now = sim_.now().us;
  const bool outage_open =
      !availability_.outages().empty() && availability_.outages().back().open();
  availability_.set_serving(true, now);
  if (outage_open) {
    last_failover_gap_ =
        Duration::micros(availability_.outages().back().downtime_us(now));
    availability_.publish_metrics("cluster.avail", now);
  }
}

TxnCounters SimCluster::counters() const {
  TxnCounters total = routing_counters_;
  total.merge(node_a_->counters());
  if (node_b_) total.merge(node_b_->counters());
  return total;
}

Duration SimCluster::total_downtime() const {
  return Duration::micros(availability_.total_downtime_us(sim_.now().us));
}

}  // namespace rodain::simdb
