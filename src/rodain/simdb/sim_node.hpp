// A complete RODAIN node on the simulation timeline.
//
// This is the driver that turns the passive engine into the system of the
// paper: a single preemptive-EDF CPU executes transaction steps, the
// overload manager caps concurrent transactions, deadline expiry aborts firm
// transactions, the Log Writer ships redo records to the Mirror Node (or to
// the local simulated disk when alone), the watchdog detects peer failure,
// and role transitions follow §2: the peer of a failed node serves alone,
// and a recovered node always comes back as Mirror.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "rodain/common/stats.hpp"
#include "rodain/engine/engine.hpp"
#include "rodain/log/checkpointer.hpp"
#include "rodain/log/log_storage.hpp"
#include "rodain/log/writer.hpp"
#include "rodain/net/channel.hpp"
#include "rodain/repl/mirror.hpp"
#include "rodain/repl/primary.hpp"
#include "rodain/sched/overload.hpp"
#include "rodain/sched/reservation.hpp"
#include "rodain/sim/cpu.hpp"
#include "rodain/sim/simulation.hpp"

namespace rodain::simdb {

struct TxnResult {
  TxnId id{kInvalidTxn};
  TxnOutcome outcome{TxnOutcome::kCommitted};
  bool late{false};  ///< committed, but after its deadline
  TimePoint arrival{};
  TimePoint finish{};
  int restarts{0};
};

struct SimNodeConfig {
  engine::EngineConfig engine{};
  sched::OverloadConfig overload{};
  /// CPU fraction reserved (on demand) for non-real-time transactions.
  double nonrt_fraction{0.05};
  /// False replaces the simulated disk with an instant in-memory sink —
  /// the paper's Fig. 3 "disk writing turned off" configurations.
  bool disk_enabled{true};
  log::SimDiskLogStorage::Options disk{};
  Duration heartbeat_interval{Duration::millis(50)};
  Duration watchdog_timeout{Duration::millis(200)};
  /// Activation delay between failure detection and serving as primary.
  Duration takeover_activation{Duration::millis(1)};
  /// A primary whose oldest unacked shipment is older than this declares
  /// the mirror lost (so committers are never stranded behind a silently
  /// lossy link). Zero disables the ack timeout.
  Duration ack_timeout{Duration::millis(100)};
  /// How long a primary tolerates a disconnected mirror link before
  /// escalating to on_mirror_lost — gives the endpoint's reconnect/backoff
  /// machinery a window to ride out link flaps. Zero keeps the historical
  /// instant escalation.
  Duration disconnect_grace{Duration::zero()};
  /// Group-commit batching for the mirror ship path (DESIGN.md §9). The
  /// default (max_txns 1, no delay) ships every submission immediately.
  log::LogWriter::BatchOptions log_batch{};
  /// Mirror-side apply width (DESIGN.md §14): real worker threads under
  /// the virtual clock. The epoch barrier completes inside the delivering
  /// event, so simulation determinism is unaffected; 1 keeps the
  /// historical serial apply.
  std::size_t apply_workers{1};
  std::size_t store_capacity_hint{30000};
  /// Periodic modelled checkpoints on the virtual timeline: the write
  /// itself is instantaneous (the simulator has no checkpoint file), but
  /// the cadence truncates the modelled log below each boundary, so disk
  /// backlog and log-size behaviour match a node with real checkpoints.
  /// Zero disables the cadence (historical behaviour).
  Duration checkpoint_interval{Duration::zero()};
  /// Model the commit-path cost of the checkpoint write. A fuzzy
  /// checkpoint (default, matching rt::Node) charges only the constant
  /// snapshot-flip cost at top priority; a stop-the-world encode charges
  /// checkpoint_cost_per_record for every live record, so queued
  /// transaction steps stall behind the whole store walk. Zero costs keep
  /// the historical instantaneous write.
  bool fuzzy_checkpoint{true};
  Duration checkpoint_flip_cost{Duration::zero()};
  Duration checkpoint_cost_per_record{Duration::zero()};
  /// Instant restart (DESIGN.md §12): restart_from_disk() indexes the
  /// stored log and serves after takeover_activation, replaying deferred
  /// chains on first touch plus background sweep events. False models the
  /// classical full replay, which blocks serving for
  /// replay_cost_per_txn * logged transactions.
  bool instant_recovery{false};
  /// Background-sweep cadence and per-event transaction budget while the
  /// redo index drains (effective background replay rate =
  /// recovery_sweep_txns / recovery_sweep_interval).
  Duration recovery_sweep_interval{Duration::millis(2)};
  std::size_t recovery_sweep_txns{64};
  /// Modelled CPU cost to replay one logged transaction during a full
  /// (non-instant) restart.
  Duration replay_cost_per_txn{Duration::micros(40)};
};

class SimNode {
 public:
  using DoneFn = std::function<void(const TxnResult&)>;
  using RoleChangeFn = std::function<void(NodeRole)>;

  SimNode(sim::Simulation& sim, std::string name, NodeId id,
          SimNodeConfig config);
  ~SimNode();
  SimNode(const SimNode&) = delete;
  SimNode& operator=(const SimNode&) = delete;

  /// Attach the channel toward the peer node (before starting a role).
  void connect(net::Channel& channel) { channel_ = &channel; }
  void set_role_change_handler(RoleChangeFn fn) { on_role_change_ = std::move(fn); }

  // ---- lifecycle -------------------------------------------------------
  /// Serve transactions. kMirror ships logs to the peer; kDirectDisk logs
  /// locally before commit; kOff disables logging.
  void start_as_primary(LogMode mode);
  /// Maintain the database copy for the peer (fresh start, stores already
  /// identical; the redo stream begins at `expected_next`).
  void start_as_mirror(ValidationTs expected_next = 1);
  /// Crash-stop. In-flight transactions die with kSystemAborted.
  void fail();
  /// Come back from a crash and rejoin as Mirror via snapshot + catch-up.
  void recover_and_rejoin();

  /// Restart alone from the surviving local disk (no peer involved). The
  /// surviving store stands in for the checkpoint file — redo replay is
  /// idempotent, so what the two modes model differently is the *work*:
  /// with instant_recovery the node serves after takeover_activation and
  /// drains a redo index via on-demand + sweep events; without it, serving
  /// is delayed by replay_cost_per_txn for every logged transaction.
  struct RestartStats {
    std::uint64_t replayable_txns{0};  ///< committed txns in the stored log
    std::uint64_t deferred_txns{0};    ///< parked in the redo index (instant)
    Duration time_to_serve{};          ///< virtual delay until serving
    bool instant{false};
  };
  RestartStats restart_from_disk(LogMode mode = LogMode::kDirectDisk);

  /// True while instant-restart redo chains are still draining.
  [[nodiscard]] bool recovering() const {
    return recovery_ && recovery_->active();
  }
  /// The redo index of the last instant restart (counters survive the
  /// drain); null before the first restart_from_disk.
  [[nodiscard]] log::RedoIndex* recovery() { return recovery_.get(); }

  [[nodiscard]] NodeRole role() const { return role_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool serving() const {
    return role_ == NodeRole::kPrimaryWithMirror || role_ == NodeRole::kPrimaryAlone;
  }

  // ---- data ------------------------------------------------------------
  [[nodiscard]] storage::ObjectStore& store() { return store_; }
  [[nodiscard]] storage::BPlusTree& index() { return index_; }

  // ---- client API ------------------------------------------------------
  void submit(txn::TxnProgram program, DoneFn done);

  /// Observe every finished transaction (with its full descriptor — read
  /// sets, captured reads, timestamps) before it is destroyed. Used by the
  /// serializability property tests and by telemetry.
  using TxnObserver =
      std::function<void(const txn::Transaction&, const TxnResult&)>;
  void set_txn_observer(TxnObserver observer) { observer_ = std::move(observer); }

  // ---- telemetry -------------------------------------------------------
  [[nodiscard]] const TxnCounters& counters() const { return counters_; }
  [[nodiscard]] const LatencyHistogram& commit_latency() const {
    return commit_latency_;
  }
  [[nodiscard]] std::size_t active_txns() const { return active_.size(); }
  [[nodiscard]] engine::Engine* engine() { return engine_.get(); }
  [[nodiscard]] log::LogWriter* log_writer() { return log_writer_.get(); }
  [[nodiscard]] log::LogStorage* disk() { return disk_.get(); }
  [[nodiscard]] repl::MirrorService* mirror_service() { return mirror_.get(); }
  /// Serving-role checkpoint cadence (mirror-role checkpoints live in
  /// MirrorService::Stats instead).
  [[nodiscard]] const log::Checkpointer::Stats& checkpoint_stats() const {
    return ckpt_.stats();
  }
  [[nodiscard]] sim::SimCpu& cpu() { return cpu_; }
  [[nodiscard]] sched::OverloadManager& overload() { return overload_; }

 private:
  struct Active {
    std::unique_ptr<txn::Transaction> txn;
    DoneFn done;
    sim::SimCpu::JobId job{sim::SimCpu::kInvalidJob};
    sim::EventId resume_event{sim::kInvalidEvent};
    sim::EventId deadline_event{sim::kInvalidEvent};
    bool late{false};
    /// A resume (lock grant / log ack) arrived while the previous step's
    /// CPU charge was still in flight; consume it in on_step_done.
    bool pending_resume{false};
  };

  void build_log_writer(LogMode mode);
  void build_engine(ValidationTs next_seq);
  void become(NodeRole role);
  void escalate_mirror_lost(const char* why);
  void resolve_primary_conflict(ValidationTs peer_height);
  void begin_takeover();
  void schedule_heartbeat();
  void heartbeat_tick();
  void schedule_checkpoint();
  void checkpoint_tick();
  void schedule_recovery_sweep();

  void run_step(TxnId id);
  void on_step_done(TxnId id, engine::StepAction action, Duration cost);
  void schedule_resume(TxnId id);
  void cancel_pending_work(Active& a);
  void on_deadline(TxnId id);
  void finish(TxnId id, TxnOutcome outcome);

  [[nodiscard]] PriorityKey dispatch_key(const txn::Transaction& t);

  sim::Simulation& sim_;
  std::string name_;
  NodeId node_id_;
  SimNodeConfig config_;

  storage::ObjectStore store_;
  storage::BPlusTree index_;
  std::unique_ptr<log::LogStorage> disk_;
  std::unique_ptr<log::LogWriter> log_writer_;
  std::unique_ptr<engine::Engine> engine_;
  std::unique_ptr<repl::PrimaryReplicator> replicator_;
  std::unique_ptr<repl::MirrorService> mirror_;
  net::Channel* channel_{nullptr};

  sim::SimCpu cpu_;
  sched::OverloadManager overload_;
  sched::NonRtReservation reservation_;
  NodeRole role_{NodeRole::kDown};
  RoleChangeFn on_role_change_;
  sim::EventId heartbeat_event_{sim::kInvalidEvent};
  /// Virtual-time checkpoint cadence while serving (armed by the primary
  /// roles, cancelled on fail()).
  sim::EventId checkpoint_event_{sim::kInvalidEvent};
  log::Checkpointer ckpt_;
  /// Deferred-redo index while an instant restart drains (DESIGN.md §12);
  /// kept after the drain so benches can read its counters.
  std::unique_ptr<log::RedoIndex> recovery_;
  sim::EventId sweep_event_{sim::kInvalidEvent};
  bool takeover_pending_{false};
  /// A split-brain demotion is scheduled (deferred off the replicator's
  /// message handler, which the demotion destroys).
  bool demotion_pending_{false};
  /// When the mirror link dropped (primary side); escalation happens only
  /// once the disconnect grace elapses without a reconnect.
  std::optional<TimePoint> link_down_since_;

  std::unordered_map<TxnId, Active> active_;
  /// Non-RT transactions whose current CPU job runs at background priority;
  /// re-boosted in place when the reservation falls behind its share.
  std::set<TxnId> nonrt_queued_;
  TxnObserver observer_;
  std::uint64_t next_local_txn_{1};
  std::uint64_t admission_seq_{0};
  TxnCounters counters_;
  LatencyHistogram commit_latency_;
};

}  // namespace rodain::simdb
