#include "rodain/simdb/sim_node.hpp"

#include <cassert>

#include "rodain/common/diag.hpp"
#include "rodain/obs/obs.hpp"

namespace rodain::simdb {

SimNode::SimNode(sim::Simulation& sim, std::string name, NodeId id,
                 SimNodeConfig config)
    : sim_(sim),
      name_(std::move(name)),
      node_id_(id),
      config_(config),
      store_(config.store_capacity_hint),
      cpu_(sim),
      overload_(config.overload),
      reservation_(config.nonrt_fraction) {
  // Lifecycle stage clocks tick in virtual time: the simulation is the
  // Clock the engine and log writer stamp transitions with.
  config_.engine.clock = &sim_;
  if (config_.disk_enabled) {
    disk_ = std::make_unique<log::SimDiskLogStorage>(sim_, config_.disk);
  } else {
    disk_ = std::make_unique<log::MemoryLogStorage>();
  }
  if (config_.checkpoint_interval.is_positive()) {
    log::Checkpointer::Options ckpt;
    ckpt.interval = config_.checkpoint_interval;
    ckpt.boundary = [this] {
      return engine_ ? engine_->installed_low_water() : ValidationTs{0};
    };
    // The simulator has no checkpoint file: the cadence exists for its
    // side effect — the Checkpointer truncates the modelled log below
    // each boundary. The write's commit-path cost is modelled as a
    // top-priority CPU burst: the constant flip for a fuzzy checkpoint,
    // the whole store walk for a stop-the-world encode.
    ckpt.write = [this](ValidationTs) {
      const Duration stall =
          config_.fuzzy_checkpoint
              ? config_.checkpoint_flip_cost
              : config_.checkpoint_cost_per_record *
                    static_cast<std::int64_t>(store_.live_size());
      if (stall.is_positive()) {
        cpu_.submit(PriorityKey{Criticality::kFirm, TimePoint{}, 0}, stall,
                    [] {});
      }
      return Status::ok();
    };
    ckpt.log = disk_.get();
    ckpt_.configure(std::move(ckpt));
  }
}

SimNode::~SimNode() = default;

void SimNode::escalate_mirror_lost(const char* why) {
  if (role_ != NodeRole::kPrimaryWithMirror) return;
  RODAIN_INFO("%s: %s, switching to direct disk logging", name_.c_str(), why);
  link_down_since_.reset();
  log_writer_->on_mirror_lost();
  become(NodeRole::kPrimaryAlone);
}

void SimNode::build_log_writer(LogMode mode) {
  log_writer_ = std::make_unique<log::LogWriter>(LogMode::kOff, disk_.get(),
                                                 nullptr);
  log_writer_->set_stage_clock(&sim_);
  if (channel_) {
    repl::PrimaryReplicator::Hooks hooks;
    hooks.snapshot_boundary = [this] {
      return engine_ ? engine_->installed_low_water() : ValidationTs{0};
    };
    hooks.on_mirror_joined = [this] {
      log_writer_->set_mode(LogMode::kMirror);
      become(NodeRole::kPrimaryWithMirror);
    };
    hooks.on_disconnect = [this] {
      if (role_ != NodeRole::kPrimaryWithMirror) return;
      if (!config_.disconnect_grace.is_positive()) {
        escalate_mirror_lost("mirror link lost");
      } else if (!link_down_since_) {
        // Tolerate the flap for the grace window; the heartbeat tick
        // escalates if no reconnect happens in time.
        link_down_since_ = sim_.now();
      }
    };
    hooks.on_reconnected = [this] { link_down_since_.reset(); };
    hooks.on_peer_primary = [this](ValidationTs peer_height) {
      resolve_primary_conflict(peer_height);
    };
    replicator_ = std::make_unique<repl::PrimaryReplicator>(
        *channel_, sim_, store_, *log_writer_, std::move(hooks));
    replicator_->set_index(&index_);
    log_writer_->set_shipper(replicator_.get());
    log_writer_->configure_ack_timeout(
        &sim_, config_.ack_timeout,
        [this] { escalate_mirror_lost("commit ack timeout"); });
    log_writer_->configure_batching(
        &sim_, config_.log_batch, [this](Duration d) {
          // The event may outlive this writer (role teardown): calling
          // flush on the successor's empty or fresh batch is harmless —
          // flush_batch() re-arms or no-ops as needed.
          sim_.schedule_after(d, [this] {
            if (log_writer_) log_writer_->flush_batch();
          });
        });
  }
  log_writer_->set_mode(mode);
}

void SimNode::resolve_primary_conflict(ValidationTs peer_height) {
  // Both nodes believe they are primary: a link-only outage outlasted the
  // mirror's watchdog, so it took over while this node kept serving. The
  // pair re-converges deterministically: the node with the richer commit
  // history keeps serving; on a tie the endpoint built earlier (the
  // original primary — smaller epoch) wins and the spurious taker-over
  // yields. Both sides evaluate the same rule with the same inputs, so
  // exactly one of them demotes.
  if (demotion_pending_ || !serving() || !replicator_) return;
  const ValidationTs mine = engine_ ? engine_->installed_low_water() : 0;
  if (mine > peer_height) return;
  if (mine == peer_height &&
      replicator_->endpoint_epoch() < replicator_->peer_epoch()) {
    return;
  }
  RODAIN_WARN(
      "%s: split brain: peer also serves (height %llu vs our %llu); "
      "stepping down to rejoin as mirror",
      name_.c_str(), static_cast<unsigned long long>(peer_height),
      static_cast<unsigned long long>(mine));
  demotion_pending_ = true;
  // Deferred: this fires from inside the replicator's heartbeat handler,
  // and the step-down destroys the replicator.
  sim_.schedule_after(Duration::zero(), [this] {
    demotion_pending_ = false;
    if (!serving()) return;  // raced with a real crash
    fail();
    recover_and_rejoin();
  });
}

void SimNode::build_engine(ValidationTs next_seq) {
  engine::Engine::Hooks hooks;
  hooks.on_victim_restart = [this](TxnId id) {
    auto it = active_.find(id);
    if (it == active_.end()) return;
    cancel_pending_work(it->second);
    nonrt_queued_.erase(id);
    schedule_resume(id);
  };
  hooks.on_lock_granted = [this](TxnId id) { schedule_resume(id); };
  hooks.on_log_durable = [this](TxnId id) { schedule_resume(id); };
  engine_ = std::make_unique<engine::Engine>(config_.engine, store_, &index_,
                                             *log_writer_, std::move(hooks));
  engine_->set_next_validation_seq(next_seq);
}

void SimNode::become(NodeRole role) {
  if (role_ == role) return;
  RODAIN_INFO("%s: role %s -> %s", name_.c_str(),
              std::string(to_string(role_)).c_str(),
              std::string(to_string(role)).c_str());
  role_ = role;
  if (on_role_change_) on_role_change_(role);
}

void SimNode::start_as_primary(LogMode mode) {
  mirror_.reset();
  replicator_.reset();
  build_log_writer(mode);
  build_engine(1);
  become(mode == LogMode::kMirror ? NodeRole::kPrimaryWithMirror
                                  : NodeRole::kPrimaryAlone);
  schedule_heartbeat();
  schedule_checkpoint();
}

void SimNode::start_as_mirror(ValidationTs expected_next) {
  replicator_.reset();
  engine_.reset();
  log_writer_.reset();
  assert(channel_ && "mirror needs a channel to the primary");
  repl::MirrorService::Options options;
  options.store_to_disk = config_.disk_enabled;
  // Real threads under the virtual clock: the epoch barrier keeps apply
  // inside the delivering event, so determinism is preserved and the wave
  // accounting matches a width-1 run exactly.
  options.apply_workers = config_.apply_workers;
  options.on_synced = [this] { become(NodeRole::kMirror); };
  options.on_abandoned = [this] { become(NodeRole::kRecovering); };
  if (config_.checkpoint_interval.is_positive()) {
    // Mirror-side checkpoints ride the apply path (MirrorService::poll);
    // the write is modelled, the truncation of the stored log is real.
    options.checkpoint_interval = config_.checkpoint_interval;
    options.write_checkpoint = [](ValidationTs) { return Status::ok(); };
  }
  mirror_ = std::make_unique<repl::MirrorService>(store_, disk_.get(),
                                                  *channel_, sim_, options,
                                                  &index_);
  mirror_->attach_synced(expected_next);
  become(NodeRole::kMirror);
  schedule_heartbeat();
}

void SimNode::fail() {
  RODAIN_INFO("%s: node failure (%zu in-flight txns lost)", name_.c_str(),
              active_.size());
  if (heartbeat_event_ != sim::kInvalidEvent) {
    sim_.cancel(heartbeat_event_);
    heartbeat_event_ = sim::kInvalidEvent;
  }
  if (checkpoint_event_ != sim::kInvalidEvent) {
    sim_.cancel(checkpoint_event_);
    checkpoint_event_ = sim::kInvalidEvent;
  }
  if (sweep_event_ != sim::kInvalidEvent) {
    sim_.cancel(sweep_event_);
    sweep_event_ = sim::kInvalidEvent;
  }
  // Parked redo dies with the node; the next restart_from_disk re-indexes
  // the surviving log (crash mid-sweep is the re-restart test's territory).
  recovery_.reset();
  takeover_pending_ = false;
  demotion_pending_ = false;
  link_down_since_.reset();
  // Every in-flight transaction dies with the node.
  auto active = std::move(active_);
  active_.clear();
  nonrt_queued_.clear();
  for (auto& [id, a] : active) {
    cancel_pending_work(a);
    if (a.deadline_event != sim::kInvalidEvent) sim_.cancel(a.deadline_event);
    overload_.on_finish();
    ++counters_.system_aborted;
    if (a.done) {
      TxnResult r;
      r.id = id;
      r.outcome = TxnOutcome::kSystemAborted;
      r.arrival = a.txn->arrival();
      r.finish = sim_.now();
      r.restarts = a.txn->restarts();
      a.done(r);
    }
  }
  engine_.reset();
  replicator_.reset();
  mirror_.reset();
  log_writer_.reset();
  become(NodeRole::kDown);
}

void SimNode::recover_and_rejoin() {
  assert(role_ == NodeRole::kDown);
  assert(channel_ && "rejoin needs a channel");
  become(NodeRole::kRecovering);
  repl::MirrorService::Options options;
  options.store_to_disk = config_.disk_enabled;
  options.apply_workers = config_.apply_workers;
  options.on_synced = [this] { become(NodeRole::kMirror); };
  options.on_abandoned = [this] { become(NodeRole::kRecovering); };
  if (config_.checkpoint_interval.is_positive()) {
    options.checkpoint_interval = config_.checkpoint_interval;
    options.write_checkpoint = [](ValidationTs) { return Status::ok(); };
  }
  mirror_ = std::make_unique<repl::MirrorService>(store_, disk_.get(),
                                                  *channel_, sim_, options,
                                                  &index_);
  mirror_->request_join(0);
  schedule_heartbeat();
}

void SimNode::schedule_heartbeat() {
  if (!channel_) return;  // lone node: no peer, no watchdog traffic
  if (heartbeat_event_ != sim::kInvalidEvent) sim_.cancel(heartbeat_event_);
  heartbeat_event_ =
      sim_.schedule_after(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void SimNode::heartbeat_tick() {
  heartbeat_event_ = sim::kInvalidEvent;
  if (role_ == NodeRole::kDown) return;
  const repl::Watchdog watchdog(config_.watchdog_timeout);
  switch (role_) {
    case NodeRole::kPrimaryWithMirror:
      if (replicator_) {
        replicator_->send_heartbeat(
            role_, engine_ ? engine_->installed_low_water() : 0);
        replicator_->poll(sim_.now());
        if (channel_ && channel_->connected()) link_down_since_.reset();
        if (link_down_since_ &&
            sim_.now() - *link_down_since_ > config_.disconnect_grace) {
          escalate_mirror_lost("mirror link still down past grace");
        } else if (log_writer_) {
          log_writer_->check_ack_timeouts();
        }
        if (role_ == NodeRole::kPrimaryWithMirror &&
            watchdog.expired(sim_.now(), replicator_->last_heard())) {
          RODAIN_INFO("%s: watchdog expired for mirror", name_.c_str());
          escalate_mirror_lost("mirror watchdog expired");
        }
      }
      break;
    case NodeRole::kPrimaryAlone:
      if (replicator_) {
        replicator_->send_heartbeat(
            role_, engine_ ? engine_->installed_low_water() : 0);
        replicator_->poll(sim_.now());
      }
      break;
    case NodeRole::kMirror:
      if (mirror_) {
        mirror_->send_heartbeat();
        mirror_->poll(sim_.now());
        // serving_last_heard, not last_heard: a recovering peer heartbeats
        // too, and its frames must not convince us the primary is alive.
        if (!takeover_pending_ &&
            watchdog.expired(sim_.now(), mirror_->serving_last_heard())) {
          RODAIN_INFO("%s: watchdog expired for primary, taking over",
                      name_.c_str());
          begin_takeover();
        }
      }
      break;
    case NodeRole::kRecovering:
      // A joiner still heartbeats (so the serving node's watchdog does not
      // fire during a long snapshot install) and drives its join retries.
      if (mirror_) {
        mirror_->send_heartbeat();
        mirror_->poll(sim_.now());
      }
      break;
    case NodeRole::kDown:
      return;
  }
  schedule_heartbeat();
}

void SimNode::schedule_checkpoint() {
  if (!ckpt_.enabled()) return;
  if (checkpoint_event_ != sim::kInvalidEvent) sim_.cancel(checkpoint_event_);
  checkpoint_event_ = sim_.schedule_after(config_.checkpoint_interval,
                                          [this] { checkpoint_tick(); });
}

void SimNode::checkpoint_tick() {
  checkpoint_event_ = sim::kInvalidEvent;
  if (!serving()) return;  // mirror-role checkpoints ride MirrorService::poll
  if (recovery_ && recovery_->active()) {
    // A boundary taken now would truncate log the redo index still needs;
    // re-arm (unlike the !serving() return) and wait out the drain.
    schedule_checkpoint();
    return;
  }
  ckpt_.tick(sim_.now());
  schedule_checkpoint();
}

SimNode::RestartStats SimNode::restart_from_disk(LogMode mode) {
  assert(role_ == NodeRole::kDown && "restart only from a crashed state");
  // The surviving store stands in for the checkpoint file (the simulator
  // never writes one): redo replay is idempotent, so what the two modes
  // model differently is only the *work* before and after serving resumes.
  std::vector<log::Record> stored;
  if (auto* d = dynamic_cast<log::SimDiskLogStorage*>(disk_.get())) {
    stored = d->records();
  } else if (auto* m = dynamic_cast<log::MemoryLogStorage*>(disk_.get())) {
    stored = m->records();
  }
  ValidationTs last_seq = 0;
  std::uint64_t committed = 0;
  for (const log::Record& r : stored) {
    if (r.is_commit() && r.seq != kInvalidValidationTs) {
      ++committed;
      if (r.seq > last_seq) last_seq = r.seq;
    }
  }
  RestartStats stats;
  stats.replayable_txns = committed;

  if (!config_.instant_recovery) {
    // Classical restart: the node is silent while every stored transaction
    // replays, then activates — TTFC grows linearly with the log.
    become(NodeRole::kRecovering);
    stats.time_to_serve = config_.takeover_activation +
                          config_.replay_cost_per_txn *
                              static_cast<std::int64_t>(committed);
    sim_.schedule_after(stats.time_to_serve, [this, mode, last_seq] {
      if (role_ != NodeRole::kRecovering) return;  // raced with fail()
      build_log_writer(mode);
      build_engine(last_seq + 1);
      become(NodeRole::kPrimaryAlone);
      schedule_heartbeat();
      schedule_checkpoint();
    });
    return stats;
  }

  // Instant restart (DESIGN.md §12): index the log without applying it and
  // serve after the bare activation delay; deferred chains replay on first
  // touch plus background sweep events.
  recovery_ = std::make_unique<log::RedoIndex>();
  if (auto s = recovery_->build(stored, 0); !s) {
    RODAIN_WARN("%s: redo index build failed (%s); restarting with empty log",
                name_.c_str(), s.message().c_str());
    recovery_.reset();
  }
  build_log_writer(mode);
  build_engine(last_seq + 1);
  if (recovery_ && recovery_->active()) {
    engine_->set_recovery(recovery_.get());
  }
  become(NodeRole::kRecovering);
  stats.instant = true;
  stats.deferred_txns = recovery_ ? recovery_->pending_txns() : 0;
  stats.time_to_serve = config_.takeover_activation;
  sim_.schedule_after(config_.takeover_activation, [this] {
    if (role_ != NodeRole::kRecovering) return;  // raced with fail()
    become(NodeRole::kPrimaryAlone);
    schedule_heartbeat();
    schedule_checkpoint();
    if (recovery_ && recovery_->active()) schedule_recovery_sweep();
  });
  return stats;
}

void SimNode::schedule_recovery_sweep() {
  if (sweep_event_ != sim::kInvalidEvent) sim_.cancel(sweep_event_);
  sweep_event_ =
      sim_.schedule_after(config_.recovery_sweep_interval, [this] {
        sweep_event_ = sim::kInvalidEvent;
        if (!recovery_ || !serving()) return;
        if (recovery_->active()) {
          recovery_->sweep(config_.recovery_sweep_txns, store_, &index_);
        }
        if (!recovery_->active()) {
          // On-demand touches may have finished the drain between events.
          if (engine_) engine_->set_recovery(nullptr);
          recovery_->retire();
          RODAIN_INFO(
              "%s: instant recovery drained (%llu on-demand, %llu background)",
              name_.c_str(),
              static_cast<unsigned long long>(recovery_->ondemand_applied()),
              static_cast<unsigned long long>(recovery_->background_applied()));
          return;
        }
        schedule_recovery_sweep();
      });
}

void SimNode::begin_takeover() {
  takeover_pending_ = true;
  sim_.schedule_after(config_.takeover_activation, [this] {
    if (role_ != NodeRole::kMirror || !mirror_) {
      // Raced with a rejoin or an abandon: the takeover is off, and the
      // latch MUST clear — a stuck takeover_pending_ would mute the
      // watchdog forever, so the next real primary death never promotes us.
      takeover_pending_ = false;
      return;
    }
    takeover_pending_ = false;
    auto takeover = mirror_->take_over();
    mirror_.reset();
    build_log_writer(LogMode::kDirectDisk);
    build_engine(takeover.next_seq);
    become(NodeRole::kPrimaryAlone);
    schedule_checkpoint();
  });
}

// ---- transaction driving -------------------------------------------------

void SimNode::submit(txn::TxnProgram program, DoneFn done) {
  ++counters_.submitted;
  const TimePoint now = sim_.now();
  TxnResult result;
  result.arrival = now;
  result.finish = now;

  if (!serving()) {
    ++counters_.system_aborted;
    result.outcome = TxnOutcome::kSystemAborted;
    if (done) done(result);
    return;
  }
  // Overload manager: when the active-transaction cap is reached, the
  // arriving (lower-priority) transaction is aborted (paper §2/§4). With
  // displacement enabled, an arrival that outranks the lowest-priority
  // abortable active transaction sheds that one instead.
  if (!overload_.try_admit(now)) {
    bool admitted = false;
    if (config_.overload.displace_on_admission) {
      const PriorityKey arriving{program.criticality,
                                 program.criticality == Criticality::kNonRealTime
                                     ? TimePoint::max()
                                     : now + program.relative_deadline,
                                 admission_seq_ + 1};
      TxnId victim = kInvalidTxn;
      const txn::Transaction* lowest = nullptr;
      for (const auto& [vid, a] : active_) {
        if (!engine_ || !engine_->can_abort(*a.txn)) continue;
        if (!lowest || lowest->priority().higher_than(a.txn->priority())) {
          lowest = a.txn.get();
          victim = vid;
        }
      }
      if (lowest && arriving.higher_than(lowest->priority())) {
        auto vit = active_.find(victim);
        cancel_pending_work(vit->second);
        engine_->abort(*vit->second.txn, TxnOutcome::kOverloadRejected);
        finish(victim, TxnOutcome::kOverloadRejected);
        admitted = overload_.try_admit(now);
      }
    }
    if (!admitted) {
      ++counters_.overload_rejected;
      result.outcome = TxnOutcome::kOverloadRejected;
      if (done) done(result);
      return;
    }
  }

  const TxnId id = (static_cast<TxnId>(node_id_) << 56) | next_local_txn_++;
  const TimePoint deadline =
      program.criticality == Criticality::kNonRealTime
          ? TimePoint::max()
          : now + program.relative_deadline;
  auto txn = std::make_unique<txn::Transaction>(id, ++admission_seq_,
                                                std::move(program), now, deadline);

  Active a;
  a.txn = std::move(txn);
  a.done = std::move(done);
  if (obs::enabled()) a.txn->stages.enter(obs::Stage::kAdmit, now.us);
  if (deadline != TimePoint::max()) {
    a.deadline_event =
        sim_.schedule_at(deadline, [this, id] { on_deadline(id); });
  }
  engine_->begin(*a.txn);
  if (obs::enabled()) a.txn->stages.enter(obs::Stage::kQueueWait, now.us);
  active_.emplace(id, std::move(a));
  run_step(id);
}

PriorityKey SimNode::dispatch_key(const txn::Transaction& t) {
  PriorityKey key = t.priority();
  if (key.crit == Criticality::kNonRealTime && reservation_.should_boost()) {
    // Demand-based reservation: run this non-RT step above the EDF queue.
    key = sched::NonRtReservation::boost_key(key.seq);
  }
  return key;
}

void SimNode::run_step(TxnId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  Active& a = it->second;
  a.resume_event = sim::kInvalidEvent;

  const engine::StepResult r = engine_->step(*a.txn);
  const Criticality crit = a.txn->criticality();
  const PriorityKey key = dispatch_key(*a.txn);
  a.job = cpu_.submit(key, r.cost,
                      [this, id, action = r.action, cost = r.cost, crit] {
                        nonrt_queued_.erase(id);
                        reservation_.charge(crit, cost);
                        // The reservation may have fallen behind its share:
                        // promote a waiting non-RT step in place.
                        if (!nonrt_queued_.empty() && reservation_.should_boost()) {
                          const TxnId starved = *nonrt_queued_.begin();
                          nonrt_queued_.erase(nonrt_queued_.begin());
                          if (auto sit = active_.find(starved); sit != active_.end()) {
                            cpu_.reprioritize(
                                sit->second.job,
                                sched::NonRtReservation::boost_key(
                                    sit->second.txn->priority().seq));
                          }
                        }
                        on_step_done(id, action, cost);
                      });
  if (crit == Criticality::kNonRealTime &&
      key.crit == Criticality::kNonRealTime) {
    nonrt_queued_.insert(id);  // running at background priority
  }
}

void SimNode::on_step_done(TxnId id, engine::StepAction action, Duration cost) {
  (void)cost;
  auto it = active_.find(id);
  if (it == active_.end()) return;
  it->second.job = sim::SimCpu::kInvalidJob;
  switch (action) {
    case engine::StepAction::kContinue:
    case engine::StepAction::kRestarted:
      run_step(id);
      break;
    case engine::StepAction::kBlocked:
    case engine::StepAction::kWaitLogAck:
      // An engine hook resumes the transaction. The hook may already have
      // fired while this step's CPU charge was in flight.
      if (it->second.pending_resume) {
        it->second.pending_resume = false;
        run_step(id);
      }
      break;
    case engine::StepAction::kCommitted:
      finish(id, TxnOutcome::kCommitted);
      break;
    case engine::StepAction::kAborted:
      finish(id, it->second.txn->outcome());
      break;
  }
}

void SimNode::schedule_resume(TxnId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  Active& a = it->second;
  if (a.job != sim::SimCpu::kInvalidJob) {
    // The previous step is still being charged; resume once it completes.
    a.pending_resume = true;
    return;
  }
  if (a.resume_event != sim::kInvalidEvent) return;  // already scheduled
  a.resume_event =
      sim_.schedule_after(Duration::zero(), [this, id] { run_step(id); });
}

void SimNode::cancel_pending_work(Active& a) {
  if (a.job != sim::SimCpu::kInvalidJob) {
    cpu_.cancel(a.job);
    a.job = sim::SimCpu::kInvalidJob;
  }
  if (a.resume_event != sim::kInvalidEvent) {
    sim_.cancel(a.resume_event);
    a.resume_event = sim::kInvalidEvent;
  }
  a.pending_resume = false;
}

void SimNode::on_deadline(TxnId id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  Active& a = it->second;
  a.deadline_event = sim::kInvalidEvent;
  if (a.txn->criticality() == Criticality::kFirm && engine_ &&
      engine_->can_abort(*a.txn)) {
    // "If the deadline of a transaction expires, the transaction is always
    // aborted" (paper §4, firm deadlines). Deferred writes make this a
    // discard.
    cancel_pending_work(a);
    engine_->abort(*a.txn, TxnOutcome::kMissedDeadline);
    finish(id, TxnOutcome::kMissedDeadline);
  } else {
    // Soft deadline, or already past validation: the transaction completes,
    // but it is late (its result has diminished value).
    a.late = true;
  }
}

void SimNode::finish(TxnId id, TxnOutcome outcome) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  Active a = std::move(it->second);
  active_.erase(it);
  nonrt_queued_.erase(id);
  if (a.deadline_event != sim::kInvalidEvent) sim_.cancel(a.deadline_event);
  overload_.on_finish();

  const TimePoint now = sim_.now();
  TxnResult result;
  result.id = id;
  result.arrival = a.txn->arrival();
  result.finish = now;
  result.restarts = a.txn->restarts();
  result.late = a.late;
  counters_.restarts += static_cast<std::uint64_t>(a.txn->restarts());

  if (obs::enabled()) {
    obs::observe_stages(a.txn->stages, now.us);
    const bool missed = (outcome == TxnOutcome::kCommitted && a.late) ||
                        outcome == TxnOutcome::kMissedDeadline;
    if (missed && a.txn->deadline() != TimePoint::max()) {
      obs::charge_deadline_miss(a.txn->stages,
                                (a.txn->deadline() - a.txn->arrival()).us,
                                now.us);
    }
  }

  if (outcome == TxnOutcome::kCommitted && a.late) {
    // Committed after its deadline: the update is durable, but the client
    // missed its deadline — counted with the misses (paper counts the
    // transaction as unsuccessful).
    outcome = TxnOutcome::kCommitted;
    ++counters_.missed_deadline;
    overload_.on_deadline_miss(now);
  } else {
    switch (outcome) {
      case TxnOutcome::kCommitted:
        ++counters_.committed;
        commit_latency_.add(now - a.txn->arrival());
        break;
      case TxnOutcome::kMissedDeadline:
        ++counters_.missed_deadline;
        overload_.on_deadline_miss(now);
        break;
      case TxnOutcome::kOverloadRejected:
        ++counters_.overload_rejected;
        break;
      case TxnOutcome::kConflictAborted:
        ++counters_.conflict_aborted;
        break;
      case TxnOutcome::kSystemAborted:
        ++counters_.system_aborted;
        break;
    }
  }
  result.outcome = outcome;
  if (observer_) observer_(*a.txn, result);
  if (a.done) a.done(result);
}

}  // namespace rodain::simdb
