// A RODAIN pair (or a lone node) plus the client-side router.
//
// The cluster owns the link between the nodes, routes client transactions to
// whichever node currently serves, injects failures/recoveries, and
// measures the availability the paper's hot-standby design buys: the gap
// between a primary failing and its peer serving again.
#pragma once

#include <memory>
#include <optional>

#include "rodain/net/faulty_link.hpp"
#include "rodain/net/sim_link.hpp"
#include "rodain/obs/availability.hpp"
#include "rodain/simdb/sim_node.hpp"

namespace rodain::simdb {

struct SimClusterConfig {
  SimNodeConfig node{};
  net::SimLink::Options link{};
  bool two_nodes{true};
  /// Log mode of the initial primary: kMirror for the two-node system,
  /// kDirectDisk or kOff for single-node configurations.
  LogMode primary_log_mode{LogMode::kMirror};
  /// When set, the inter-node link is wrapped in a deterministic
  /// fault-injecting decorator (chaos testing).
  std::optional<net::FaultyLink::Options> faults{};
};

class SimCluster {
 public:
  SimCluster(sim::Simulation& sim, SimClusterConfig config);

  /// Populate both databases identically before start().
  void populate(const std::function<void(storage::ObjectStore&,
                                         storage::BPlusTree&)>& loader);

  /// Bring the configured roles up.
  void start();

  /// Route a transaction to the serving node (kSystemAborted when none).
  void submit(txn::TxnProgram program, SimNode::DoneFn done);

  [[nodiscard]] SimNode& node_a() { return *node_a_; }
  [[nodiscard]] SimNode& node_b() { return *node_b_; }
  /// The node client traffic goes to. Sticky: while the last-used node
  /// still serves, it keeps the traffic — so during a split-brain window
  /// (both briefly claim a primary role) only the incumbent accumulates
  /// new commits and the pair can re-converge without losing any.
  [[nodiscard]] SimNode* serving_node();
  [[nodiscard]] net::SimLink* link() { return link_.get(); }
  /// Non-null when config.faults was set.
  [[nodiscard]] net::FaultyLink* faulty_link() { return faulty_.get(); }

  /// Crash a node (severs the link); the peer reacts per §2.
  void fail_node(SimNode& node);
  /// Restore the link and rejoin the node as Mirror.
  void recover_node(SimNode& node);

  /// Client-visible counters (merged node counters + routing rejections).
  [[nodiscard]] TxnCounters counters() const;
  /// Total time with no serving node so far.
  [[nodiscard]] Duration total_downtime() const;
  /// Last observed failover gap (failure -> peer serving), if any.
  [[nodiscard]] std::optional<Duration> last_failover_gap() const {
    return last_failover_gap_;
  }
  /// Cluster-level serving/outage timeline: every outage with its downtime
  /// and time-to-first-commit after the peer (or a restart) serves again.
  [[nodiscard]] const obs::AvailabilityTimeline& availability() const {
    return availability_;
  }

 private:
  void on_role_change(NodeRole role);

  sim::Simulation& sim_;
  SimClusterConfig config_;
  std::unique_ptr<net::SimLink> link_;
  std::unique_ptr<net::FaultyLink> faulty_;
  std::unique_ptr<SimNode> node_a_;
  std::unique_ptr<SimNode> node_b_;
  SimNode* preferred_{nullptr};
  TxnCounters routing_counters_;

  /// Source of truth for the outage bookkeeping the accessors above expose.
  obs::AvailabilityTimeline availability_;
  std::optional<Duration> last_failover_gap_;
};

}  // namespace rodain::simdb
