#include "rodain/storage/ckpt_manifest.hpp"

#include <filesystem>

#include "rodain/storage/checkpoint.hpp"

namespace rodain::storage {

namespace {
constexpr std::uint64_t kManifestMagic = 0x31464e4d444f52ULL;  // "RODMNF1"
constexpr std::uint32_t kManifestVersion = 1;
}  // namespace

std::string manifest_path_for(const std::string& checkpoint_path) {
  return checkpoint_path + ".manifest";
}

std::string sibling_path(const std::string& manifest_path,
                         const std::string& file) {
  return (std::filesystem::path(manifest_path).parent_path() / file).string();
}

void encode_manifest(const CkptManifest& m, ByteWriter& out) {
  const std::size_t body_start = out.size();
  out.put_u64(kManifestMagic);
  out.put_u32(kManifestVersion);
  out.put_u64(m.covered_boundary());
  out.put_u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const ManifestEntry& e : m.entries) {
    out.put_u8(static_cast<std::uint8_t>(e.kind));
    out.put_u64(e.boundary);
    out.put_u64(e.capture_epoch);
    out.put_u64(e.bytes);
    out.put_string(e.file);
  }
  out.put_u32(crc32c(out.view().subspan(body_start)));
}

Result<CkptManifest> decode_manifest(std::span<const std::byte> data) {
  if (data.size() < 4) {
    return Status::error(ErrorCode::kCorruption, "manifest too short");
  }
  const auto body = data.subspan(0, data.size() - 4);
  ByteReader crc_reader(data.subspan(data.size() - 4));
  std::uint32_t expect = 0;
  if (auto s = crc_reader.get_u32(expect); !s) return s;
  if (crc32c(body) != expect) {
    return Status::error(ErrorCode::kCorruption, "manifest CRC mismatch");
  }

  ByteReader r(body);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t covered = 0;
  std::uint32_t count = 0;
  if (auto s = r.get_u64(magic); !s) return s;
  if (magic != kManifestMagic) {
    return Status::error(ErrorCode::kCorruption, "bad manifest magic");
  }
  if (auto s = r.get_u32(version); !s) return s;
  if (version != kManifestVersion) {
    return Status::error(ErrorCode::kCorruption, "unsupported manifest version");
  }
  if (auto s = r.get_u64(covered); !s) return s;
  if (auto s = r.get_u32(count); !s) return s;

  CkptManifest m;
  m.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ManifestEntry e;
    std::uint8_t kind = 0;
    if (auto s = r.get_u8(kind); !s) return s;
    if (kind > 1) {
      return Status::error(ErrorCode::kCorruption, "bad manifest entry kind");
    }
    e.kind = static_cast<ManifestEntry::Kind>(kind);
    if (auto s = r.get_u64(e.boundary); !s) return s;
    if (auto s = r.get_u64(e.capture_epoch); !s) return s;
    if (auto s = r.get_u64(e.bytes); !s) return s;
    if (auto s = r.get_string(e.file); !s) return s;
    m.entries.push_back(std::move(e));
  }
  if (!r.at_end()) {
    return Status::error(ErrorCode::kCorruption, "trailing manifest bytes");
  }

  // Structural checks: exactly one base, first; boundaries and capture
  // epochs non-decreasing along the chain.
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    const bool is_base = m.entries[i].kind == ManifestEntry::Kind::kBase;
    if (is_base != (i == 0)) {
      return Status::error(ErrorCode::kCorruption, "manifest chain misordered");
    }
    if (i > 0 && (m.entries[i].boundary < m.entries[i - 1].boundary ||
                  m.entries[i].capture_epoch <= m.entries[i - 1].capture_epoch)) {
      return Status::error(ErrorCode::kCorruption, "manifest chain non-monotone");
    }
  }
  if (covered != m.covered_boundary()) {
    return Status::error(ErrorCode::kCorruption, "manifest boundary mismatch");
  }
  return m;
}

Status write_manifest_file(const CkptManifest& m, const std::string& path) {
  ByteWriter w(64 + m.entries.size() * 64);
  encode_manifest(m, w);
  return write_file_atomic(path, w.view());
}

Result<CkptManifest> read_manifest_file(const std::string& path) {
  auto buf = read_file_bytes(path);
  if (!buf.is_ok()) return buf.status();
  return decode_manifest(buf.value());
}

}  // namespace rodain::storage
