// Small-buffer byte string for object payloads.
//
// Telecom records (routing entries, service profiles) are tens of bytes;
// keeping them inline avoids a heap allocation per object and per deferred
// write-set copy, which matters when every update transaction clones its
// objects (deferred write, paper §2).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace rodain::storage {

class Value {
 public:
  static constexpr std::size_t kInlineCapacity = 48;
  static constexpr std::size_t kInlineWords = kInlineCapacity / 8;

  Value() = default;
  explicit Value(std::span<const std::byte> bytes) { assign(bytes); }
  explicit Value(std::string_view s) {
    assign(std::as_bytes(std::span{s.data(), s.size()}));
  }

  Value(const Value& o) { assign(o.view()); }
  Value& operator=(const Value& o) {
    if (this != &o) assign(o.view());
    return *this;
  }
  Value(Value&& o) noexcept { move_from(o); }
  Value& operator=(Value&& o) noexcept {
    if (this != &o) {
      release();
      move_from(o);
    }
    return *this;
  }
  ~Value() { release(); }

  void assign(std::span<const std::byte> bytes);
  void clear() {
    release();
    size_ = 0;
    heap_ = nullptr;
  }

  [[nodiscard]] std::span<const std::byte> view() const {
    return {data(), size_};
  }
  [[nodiscard]] std::span<std::byte> mutable_view() { return {data(), size_}; }
  [[nodiscard]] const std::byte* data() const {
    return is_inline() ? inline_ : heap_;
  }
  [[nodiscard]] std::byte* data() { return is_inline() ? inline_ : heap_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool is_inline() const { return size_ <= kInlineCapacity; }

  /// Read/write a little-endian u64 at a byte offset (for counter fields).
  [[nodiscard]] std::uint64_t read_u64(std::size_t offset) const;
  void write_u64(std::size_t offset, std::uint64_t v);

  // ---- seqlock plumbing (ObjectStore::read_optimistic) -------------------
  // Inline payloads are written and read as relaxed word-size atomics so an
  // optimistic reader may race the single in-place writer without UB; the
  // record's seqlock decides whether the copy was consistent. Payloads
  // above kInlineCapacity never take these paths: they mutate only under
  // the store's unique table lock.

  /// In-place overwrite with word-atomic stores. Requires the value to be
  /// inline before the call and `bytes.size() <= kInlineCapacity`.
  void store_inline_relaxed(std::span<const std::byte> bytes);

  /// Word-atomic copy of the inline payload into `words` (size in bytes via
  /// `size`). Returns false when the observed size says the payload is on
  /// the heap — the caller must copy through a locked path instead.
  bool load_inline_relaxed(std::uint64_t (&words)[kInlineWords],
                           std::size_t& size) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.size_ == b.size_ &&
           std::memcmp(a.data(), b.data(), a.size_) == 0;
  }

 private:
  void release();
  void move_from(Value& o) noexcept;

  std::size_t size_{0};
  union {
    std::byte inline_[kInlineCapacity];
    std::uint64_t words_[kInlineWords];  // word view for the atomic paths
    std::byte* heap_;
  };
};

inline void Value::store_inline_relaxed(std::span<const std::byte> bytes) {
  assert(is_inline() && bytes.size() <= kInlineCapacity);
  std::uint64_t tmp[kInlineWords] = {};
  if (!bytes.empty()) std::memcpy(tmp, bytes.data(), bytes.size());
  for (std::size_t i = 0; i < kInlineWords; ++i) {
    std::atomic_ref<std::uint64_t>(words_[i]).store(tmp[i],
                                                    std::memory_order_relaxed);
  }
  std::atomic_ref<std::size_t>(size_).store(bytes.size(),
                                            std::memory_order_relaxed);
}

inline bool Value::load_inline_relaxed(std::uint64_t (&words)[kInlineWords],
                                       std::size_t& size) const {
  const std::size_t s =
      std::atomic_ref<std::size_t>(const_cast<std::size_t&>(size_))
          .load(std::memory_order_relaxed);
  if (s > kInlineCapacity) return false;
  for (std::size_t i = 0; i < kInlineWords; ++i) {
    words[i] = std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(words_[i]))
                   .load(std::memory_order_relaxed);
  }
  size = s;
  return true;
}

}  // namespace rodain::storage
