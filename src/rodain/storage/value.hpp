// Small-buffer byte string for object payloads.
//
// Telecom records (routing entries, service profiles) are tens of bytes;
// keeping them inline avoids a heap allocation per object and per deferred
// write-set copy, which matters when every update transaction clones its
// objects (deferred write, paper §2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace rodain::storage {

class Value {
 public:
  static constexpr std::size_t kInlineCapacity = 48;

  Value() = default;
  explicit Value(std::span<const std::byte> bytes) { assign(bytes); }
  explicit Value(std::string_view s) {
    assign(std::as_bytes(std::span{s.data(), s.size()}));
  }

  Value(const Value& o) { assign(o.view()); }
  Value& operator=(const Value& o) {
    if (this != &o) assign(o.view());
    return *this;
  }
  Value(Value&& o) noexcept { move_from(o); }
  Value& operator=(Value&& o) noexcept {
    if (this != &o) {
      release();
      move_from(o);
    }
    return *this;
  }
  ~Value() { release(); }

  void assign(std::span<const std::byte> bytes);
  void clear() {
    release();
    size_ = 0;
    heap_ = nullptr;
  }

  [[nodiscard]] std::span<const std::byte> view() const {
    return {data(), size_};
  }
  [[nodiscard]] std::span<std::byte> mutable_view() { return {data(), size_}; }
  [[nodiscard]] const std::byte* data() const {
    return is_inline() ? inline_ : heap_;
  }
  [[nodiscard]] std::byte* data() { return is_inline() ? inline_ : heap_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool is_inline() const { return size_ <= kInlineCapacity; }

  /// Read/write a little-endian u64 at a byte offset (for counter fields).
  [[nodiscard]] std::uint64_t read_u64(std::size_t offset) const;
  void write_u64(std::size_t offset, std::uint64_t v);

  friend bool operator==(const Value& a, const Value& b) {
    return a.size_ == b.size_ &&
           std::memcmp(a.data(), b.data(), a.size_) == 0;
  }

 private:
  void release();
  void move_from(Value& o) noexcept;

  std::size_t size_{0};
  union {
    std::byte inline_[kInlineCapacity];
    std::byte* heap_;
  };
};

}  // namespace rodain::storage
