#include "rodain/storage/value.hpp"

#include <cassert>
#include <vector>

namespace rodain::storage {

void Value::assign(std::span<const std::byte> bytes) {
  if (bytes.size() <= kInlineCapacity) {
    // Copy through a temporary so self-referencing assigns are safe. An
    // empty span may carry a null data() — memcpy forbids that even for
    // zero sizes.
    std::byte tmp[kInlineCapacity];
    if (!bytes.empty()) std::memcpy(tmp, bytes.data(), bytes.size());
    release();
    size_ = bytes.size();
    std::memcpy(inline_, tmp, bytes.size());
    return;
  }
  auto* p = new std::byte[bytes.size()];
  std::memcpy(p, bytes.data(), bytes.size());
  release();
  size_ = bytes.size();
  heap_ = p;
}

void Value::release() {
  if (!is_inline()) delete[] heap_;
}

void Value::move_from(Value& o) noexcept {
  size_ = o.size_;
  if (o.is_inline()) {
    std::memcpy(inline_, o.inline_, o.size_);
  } else {
    heap_ = o.heap_;
    o.heap_ = nullptr;
    o.size_ = 0;
  }
}

std::uint64_t Value::read_u64(std::size_t offset) const {
  assert(offset + 8 <= size_);
  if (offset + 8 > size_) return 0;  // defensive in release builds
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(data()[offset + i]))
         << (8 * i);
  }
  return v;
}

void Value::write_u64(std::size_t offset, std::uint64_t v) {
  if (offset + 8 > size_) {
    // Grow zero-filled so counter fields can live in short objects.
    std::vector<std::byte> grown(offset + 8);
    std::memcpy(grown.data(), data(), size_);
    assign(std::span<const std::byte>{grown});
  }
  for (std::size_t i = 0; i < 8; ++i) {
    data()[offset + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

}  // namespace rodain::storage
