#include "rodain/storage/checkpoint.hpp"

#include <cstdio>
#include <fcntl.h>
#include <filesystem>
#include <unistd.h>
#include <vector>

namespace rodain::storage {

namespace {
constexpr std::uint64_t kMagic = kCheckpointMagic;  // "ROD CKT1"-ish tag
constexpr std::uint32_t kVersion = 2;  // v2 adds the optional index section
}  // namespace

void encode_checkpoint(const ObjectStore& store, ValidationTs last_applied,
                       ByteWriter& out, const BPlusTree* index) {
  const std::size_t body_start = out.size();
  out.put_u64(kMagic);
  out.put_u32(kVersion);
  out.put_u64(last_applied);
  out.put_u64(store.live_size());  // tombstones are compacted away
  store.for_each([&](ObjectId id, const ObjectRecord& rec) {
    if (rec.deleted) return;
    out.put_u64(id);
    out.put_u64(rec.wts);
    out.put_bytes(rec.value.view());
  });
  out.put_varint(index ? index->size() : 0);
  if (index) {
    index->range_scan(IndexKey::min(), IndexKey::max(),
                      [&](const IndexKey& key, ObjectId oid) {
                        out.put_raw(std::as_bytes(std::span{key.bytes}));
                        out.put_varint(oid);
                        return true;
                      });
  }
  const auto body = out.view().subspan(body_start);
  out.put_u32(crc32c(body));
}

Result<CheckpointMeta> decode_checkpoint(std::span<const std::byte> data,
                                         ObjectStore& store,
                                         BPlusTree* index) {
  if (data.size() < 4) {
    return Status::error(ErrorCode::kCorruption, "checkpoint too short");
  }
  const auto body = data.subspan(0, data.size() - 4);
  ByteReader crc_reader(data.subspan(data.size() - 4));
  std::uint32_t expect = 0;
  if (auto s = crc_reader.get_u32(expect); !s) return s;
  if (crc32c(body) != expect) {
    return Status::error(ErrorCode::kCorruption, "checkpoint CRC mismatch");
  }

  ByteReader r(body);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  CheckpointMeta meta;
  if (auto s = r.get_u64(magic); !s) return s;
  if (magic != kMagic) {
    return Status::error(ErrorCode::kCorruption, "bad checkpoint magic");
  }
  if (auto s = r.get_u32(version); !s) return s;
  if (version != 1 && version != kVersion) {
    return Status::error(ErrorCode::kCorruption, "unsupported checkpoint version");
  }
  if (auto s = r.get_u64(meta.last_applied); !s) return s;
  if (auto s = r.get_u64(meta.object_count); !s) return s;

  store.clear();
  if (index) *index = BPlusTree{};
  for (std::uint64_t i = 0; i < meta.object_count; ++i) {
    std::uint64_t id = 0;
    std::uint64_t wts = 0;
    std::vector<std::byte> value;
    if (auto s = r.get_u64(id); !s) return s;
    if (auto s = r.get_u64(wts); !s) return s;
    if (auto s = r.get_bytes(value); !s) return s;
    store.upsert(id, Value{std::span<const std::byte>{value}}, wts);
  }
  if (version >= 2) {
    std::uint64_t index_count = 0;
    if (auto s = r.get_varint(index_count); !s) return s;
    for (std::uint64_t i = 0; i < index_count; ++i) {
      IndexKey key;
      std::span<const std::byte> raw;
      std::uint64_t oid = 0;
      if (auto s = r.get_raw(key.bytes.size(), raw); !s) return s;
      std::memcpy(key.bytes.data(), raw.data(), raw.size());
      if (auto s = r.get_varint(oid); !s) return s;
      if (index) index->insert(key, oid);
    }
  }
  if (!r.at_end()) {
    return Status::error(ErrorCode::kCorruption, "trailing checkpoint bytes");
  }
  return meta;
}

namespace {
/// Flush directory metadata so a rename survives power loss.
Status fsync_parent_dir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::error(ErrorCode::kIoError, "cannot open dir " + dir);
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return Status::error(ErrorCode::kIoError, "dir fsync " + dir);
  return Status::ok();
}
}  // namespace

Status write_file_atomic(const std::string& path,
                         std::span<const std::byte> bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return Status::error(ErrorCode::kIoError, "cannot open " + tmp);
  // The tmp file must be on stable storage BEFORE the rename: rename is
  // atomic for the directory entry only, so without the fsync a crash can
  // expose `path` pointing at an empty or torn file — corruption where the
  // old checkpoint used to be.
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::error(ErrorCode::kIoError, "short checkpoint write");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    // Don't leave the orphaned tmp behind: nothing ever retries this exact
    // temp name, and a stale `.tmp` shadows the next attempt's error state.
    std::remove(tmp.c_str());
    return Status::error(ErrorCode::kIoError, "rename: " + ec.message());
  }
  return fsync_parent_dir(path);
}

Status write_checkpoint_file(const ObjectStore& store, ValidationTs last_applied,
                             const std::string& path, const BPlusTree* index) {
  ByteWriter w(store.size() * 80 + 64);
  encode_checkpoint(store, last_applied, w, index);
  return write_file_atomic(path, w.view());
}

Result<std::vector<std::byte>> read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::error(ErrorCode::kNotFound, "cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  if (len < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::error(ErrorCode::kIoError, "cannot size " + path);
  }
  if (len == 0) {
    // A zero-length file is what a crash between create and first write
    // leaves behind — recovery treats it like no checkpoint at all, not
    // like corruption.
    std::fclose(f);
    return Status::error(ErrorCode::kNotFound, "empty checkpoint " + path);
  }
  std::vector<std::byte> buf(static_cast<std::size_t>(len));
  const bool ok = std::fread(buf.data(), 1, buf.size(), f) == buf.size();
  std::fclose(f);
  if (!ok) return Status::error(ErrorCode::kIoError, "short checkpoint read");
  return buf;
}

Result<CheckpointMeta> read_checkpoint_file(const std::string& path,
                                            ObjectStore& store,
                                            BPlusTree* index) {
  auto buf = read_file_bytes(path);
  if (!buf.is_ok()) return buf.status();
  return decode_checkpoint(buf.value(), store, index);
}

Result<CheckpointMeta> peek_checkpoint(std::span<const std::byte> data) {
  if (data.size() < 4) {
    return Status::error(ErrorCode::kCorruption, "checkpoint too short");
  }
  const auto body = data.subspan(0, data.size() - 4);
  ByteReader crc_reader(data.subspan(data.size() - 4));
  std::uint32_t expect = 0;
  if (auto s = crc_reader.get_u32(expect); !s) return s;
  if (crc32c(body) != expect) {
    return Status::error(ErrorCode::kCorruption, "checkpoint CRC mismatch");
  }
  ByteReader r(body);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  CheckpointMeta meta;
  if (auto s = r.get_u64(magic); !s) return s;
  if (magic != kMagic) {
    return Status::error(ErrorCode::kCorruption, "bad checkpoint magic");
  }
  if (auto s = r.get_u32(version); !s) return s;
  if (version != 1 && version != kVersion) {
    return Status::error(ErrorCode::kCorruption,
                         "unsupported checkpoint version");
  }
  if (auto s = r.get_u64(meta.last_applied); !s) return s;
  if (auto s = r.get_u64(meta.object_count); !s) return s;
  return meta;
}

Result<CheckpointBytes> read_checkpoint_bytes(const std::string& path) {
  auto buf = read_file_bytes(path);
  if (!buf.is_ok()) return buf.status();
  CheckpointBytes out;
  out.bytes = std::move(buf).value();
  auto meta = peek_checkpoint(out.bytes);
  if (!meta.is_ok()) return meta.status();
  out.meta = meta.value();
  return out;
}

}  // namespace rodain::storage
