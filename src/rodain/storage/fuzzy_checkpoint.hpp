// Fuzzy checkpoint artifacts (DESIGN.md §15).
//
// A fuzzy checkpoint is written while committers keep running: the store's
// snapshot mode (ObjectStore::snapshot_begin/snapshot_scan) supplies a
// point-in-time view at the flipped boundary, and per-record dirty epochs
// let the encoder alternate full *base* files with incremental *delta*
// files containing only records dirtied since the previous capture. The
// artifacts form a chain named by the CRC'd manifest (ckpt_manifest.hpp);
// recovery loads base + deltas in order, and joins ship the whole chain in
// a container frame so the wire protocol stays a single opaque blob.
//
// v3 file layout (little-endian, CRC-32C over everything before the CRC):
//   u64 magic (kCheckpointMagic) | u32 version=3 | u8 kind (0 base, 1 delta)
//   u64 boundary | u64 capture_epoch | u64 floor_epoch
//   u32 record_count | records { u64 id, u64 wts, u8 flags, bytes value }
//   u32 index_op_count | ops { u8 kind, 16B key, varint oid }
//   u32 crc
// Record flags bit0 = tombstone (deltas only; bases are compacted). A base's
// index section is the full index dumped as upsert ops, so one op-applier
// decodes both kinds.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rodain/common/serialization.hpp"
#include "rodain/common/status.hpp"
#include "rodain/common/types.hpp"
#include "rodain/storage/btree.hpp"
#include "rodain/storage/checkpoint.hpp"
#include "rodain/storage/ckpt_manifest.hpp"
#include "rodain/storage/object_store.hpp"

namespace rodain::storage {

inline constexpr std::uint32_t kFuzzyVersion = 3;
/// Container frame carrying a whole base+delta chain (join shipping).
inline constexpr std::uint64_t kChainMagic = 0x314e4843444f52ULL;  // "RODCHN1"

struct FuzzyMeta {
  bool delta{false};
  ValidationTs boundary{0};
  std::uint64_t capture_epoch{0};
  std::uint64_t floor_epoch{0};
  std::uint64_t record_count{0};
  std::uint64_t index_op_count{0};
};

struct FuzzyEncodeStats {
  std::uint64_t records{0};
  std::uint64_t index_ops{0};
  std::uint64_t bytes{0};
  ObjectStore::SnapshotScanStats scan;
};

/// Encode a base from the active snapshot (snapshot_begin must have been
/// called; the caller owns snapshot_end). Walks every record via
/// snapshot_scan(floor=0) — tombstones compacted away — and dumps the full
/// index via chunked_scan as upsert ops.
FuzzyEncodeStats encode_fuzzy_base(ObjectStore& store, const BPlusTree& index,
                                   ValidationTs boundary, ByteWriter& out);

/// Encode a delta from the active snapshot: records with dirty epoch >
/// `floor_epoch` (tombstones included, flagged) plus the index change
/// journal cut at the flip.
FuzzyEncodeStats encode_fuzzy_delta(ObjectStore& store,
                                    std::span<const IndexOp> index_ops,
                                    ValidationTs boundary,
                                    std::uint64_t floor_epoch, ByteWriter& out);

/// CRC + header check, metadata only (no store rebuild).
Result<FuzzyMeta> peek_fuzzy(std::span<const std::byte> data);

/// Decode a v3 base into `store` (cleared first) and `index` (reset).
Result<CheckpointMeta> decode_fuzzy_base(std::span<const std::byte> data,
                                         ObjectStore& store, BPlusTree* index);

/// Apply a v3 delta on top of an already-loaded chain prefix.
Result<CheckpointMeta> apply_fuzzy_delta(std::span<const std::byte> data,
                                         ObjectStore& store, BPlusTree* index);

/// Wrap already-encoded artifacts (base first) into one chain blob.
void encode_chain(std::span<const std::vector<std::byte>> parts,
                  ByteWriter& out);

/// Decode any checkpoint payload a peer or the disk may hand us: a chain
/// container, a bare v3 base, or a legacy v1/v2 full checkpoint.
Result<CheckpointMeta> decode_checkpoint_any(std::span<const std::byte> data,
                                             ObjectStore& store,
                                             BPlusTree* index = nullptr);

/// Load the freshest complete artifact set under `checkpoint_path`: the
/// manifest chain and the legacy single file are both considered and the
/// higher covered boundary wins (a corrupt winner falls back to the other).
/// kNotFound when neither exists.
Result<CheckpointMeta> load_checkpoint_artifacts(
    const std::string& checkpoint_path, ObjectStore& store,
    BPlusTree* index = nullptr);

/// Same freshest-artifact-set selection, but returning the raw bytes (chain
/// container or legacy blob) plus peeked metadata, for serving a join from
/// the on-disk artifacts without decoding them.
Result<CheckpointBytes> read_artifact_chain_bytes(
    const std::string& checkpoint_path);

}  // namespace rodain::storage
