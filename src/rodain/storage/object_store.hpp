// The main-memory object store: a robin-hood open-addressing table mapping
// ObjectId to the object's payload plus the OCC timestamps (largest committed
// reader / writer) the concurrency controllers consult at validation.
//
// Concurrency (DESIGN.md §11, §13): mutators of the *same* record must be
// externally serialized (the engine's commit mutex in serial contexts, or a
// per-record write intent on the parallel commit path — two installers never
// target one oid concurrently), but optimistic readers may race them freely
// and installers of *different* records may race each other. Structural
// changes (new slots, robin-hood displacement, growth, erase, anything
// touching a heap-allocated payload) take the unique table lock; in-place
// updates of existing records with inline payloads run under the shared
// table lock and bump only the record's seqlock, so the common
// telecom-record update never fences the reader side.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rodain/common/status.hpp"
#include "rodain/common/types.hpp"
#include "rodain/storage/value.hpp"

namespace rodain::storage {

/// One stored object. `rts`/`wts` are the largest validation timestamps of
/// committed readers/writers — the state OCC-TI/OCC-DATI intervals are
/// computed against. Deleted objects stay as tombstones (`deleted`, empty
/// value) so that a later reader still observes the deleter's `wts` and the
/// serialization intervals remain sound; garbage collection of tombstones
/// is an offline concern (compaction drops them).
struct ObjectRecord {
  Value value;
  ValidationTs rts{0};
  ValidationTs wts{0};
  bool deleted{false};
  /// Fuzzy-checkpoint bookkeeping (DESIGN.md §15). `dirty_epoch` is the
  /// store's mutation epoch at the record's last write: the delta encoder
  /// includes exactly the records dirtied after the previous capture.
  /// `captured_epoch` is the snapshot walker's dedup stamp — set to the
  /// active capture epoch once the record was emitted (or proven
  /// post-snapshot), so restarted walk passes and the CoW retain path never
  /// emit a record twice. Both are accessed through atomic_ref: writers
  /// stamp dirty under the record seqlock while the walker reads it, and
  /// the walker stamps captured under the shared table lock while in-place
  /// writers consult it.
  std::uint64_t dirty_epoch{0};
  std::uint64_t captured_epoch{0};

  [[nodiscard]] bool live() const { return !deleted; }

  ObjectRecord() = default;
  // The seq counter is transferred with relaxed loads/stores: copies and
  // moves only happen in structural store operations (grow, slot shifts)
  // under the unique table lock, or on private engine-side snapshots.
  ObjectRecord(const ObjectRecord& o)
      : value(o.value), rts(o.rts), wts(o.wts), deleted(o.deleted),
        dirty_epoch(o.dirty_epoch), captured_epoch(o.captured_epoch),
        seq_(o.seq_.load(std::memory_order_relaxed)) {}
  ObjectRecord& operator=(const ObjectRecord& o) {
    if (this != &o) {
      value = o.value;
      rts = o.rts;
      wts = o.wts;
      deleted = o.deleted;
      dirty_epoch = o.dirty_epoch;
      captured_epoch = o.captured_epoch;
      seq_.store(o.seq_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    }
    return *this;
  }
  ObjectRecord(ObjectRecord&& o) noexcept
      : value(std::move(o.value)), rts(o.rts), wts(o.wts), deleted(o.deleted),
        dirty_epoch(o.dirty_epoch), captured_epoch(o.captured_epoch),
        seq_(o.seq_.load(std::memory_order_relaxed)) {}
  ObjectRecord& operator=(ObjectRecord&& o) noexcept {
    if (this != &o) {
      value = std::move(o.value);
      rts = o.rts;
      wts = o.wts;
      deleted = o.deleted;
      dirty_epoch = o.dirty_epoch;
      captured_epoch = o.captured_epoch;
      seq_.store(o.seq_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    }
    return *this;
  }

  // ---- per-record seqlock ------------------------------------------------
  // Odd while an in-place writer is mid-update. The writer sequence is the
  // standard C++ seqlock idiom: odd store, release fence, relaxed payload
  // stores, even release store. Readers pair it with an acquire load, relaxed
  // payload loads, an acquire fence, and a relaxed re-check.
  [[nodiscard]] std::uint32_t seq_acquire() const {
    return seq_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint32_t seq_relaxed() const {
    return seq_.load(std::memory_order_relaxed);
  }
  void write_begin() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }
  void write_end() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
  }

  /// Timestamp bumps that race optimistic readers (cc::on_installed runs
  /// under the commit mutex, not the table lock). A lone u64 store cannot
  /// tear, so no seqlock round-trip is needed; readers tolerate a stale
  /// rts/wts the same way they tolerate one read a microsecond earlier.
  void bump_rts(ValidationTs ts) {
    std::atomic_ref<ValidationTs> r(rts);
    if (ts > r.load(std::memory_order_relaxed)) {
      r.store(ts, std::memory_order_relaxed);
    }
  }
  void bump_wts(ValidationTs ts) {
    std::atomic_ref<ValidationTs> w(wts);
    if (ts > w.load(std::memory_order_relaxed)) {
      w.store(ts, std::memory_order_relaxed);
    }
  }
  /// Loads that race the bumps above (unlocked read phases observing a
  /// record a committer is installing over). Same tolerance argument as
  /// the bumps: a stale value is indistinguishable from an earlier read.
  [[nodiscard]] ValidationTs rts_relaxed() const {
    return std::atomic_ref<ValidationTs>(const_cast<ValidationTs&>(rts))
        .load(std::memory_order_relaxed);
  }
  [[nodiscard]] ValidationTs wts_relaxed() const {
    return std::atomic_ref<ValidationTs>(const_cast<ValidationTs&>(wts))
        .load(std::memory_order_relaxed);
  }

  // Epoch accesses race the snapshot walker: relaxed atomic_refs, ordered
  // by the record seqlock (dirty) or the retain-stripe mutex (captured).
  [[nodiscard]] std::uint64_t dirty_epoch_relaxed() const {
    return std::atomic_ref<std::uint64_t>(
               const_cast<std::uint64_t&>(dirty_epoch))
        .load(std::memory_order_relaxed);
  }
  void set_dirty_epoch(std::uint64_t e) {
    std::atomic_ref<std::uint64_t>(dirty_epoch)
        .store(e, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t captured_epoch_relaxed() const {
    return std::atomic_ref<std::uint64_t>(
               const_cast<std::uint64_t&>(captured_epoch))
        .load(std::memory_order_relaxed);
  }
  void set_captured_epoch(std::uint64_t e) {
    std::atomic_ref<std::uint64_t>(captured_epoch)
        .store(e, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> seq_{0};
};

/// Result of an optimistic (seqlock) read.
enum class OptimisticRead : std::uint8_t {
  kHit = 0,    ///< `out` holds a consistent committed snapshot
  kMiss,       ///< no record for the id
  kContended,  ///< retry budget exhausted — take the transactional path
};

class ObjectStore {
 public:
  /// Per-attempt retry budget of read_optimistic callers that have a cheap
  /// serial fallback (writer sections are a few dozen instructions, so any
  /// retry at all is rare).
  static constexpr std::uint32_t kDefaultOptimisticRetries = 64;

  explicit ObjectStore(std::size_t expected_objects = 1024);

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;
  ObjectStore(ObjectStore&&) = delete;
  ObjectStore& operator=(ObjectStore&&) = delete;

  /// Insert a new object; fails with kAlreadyExists if the id is taken.
  Status insert(ObjectId id, Value value);

  /// Insert or overwrite (used by the mirror applier and recovery, which
  /// replay after-images without knowing whether the object pre-existed).
  /// Revives tombstones.
  ObjectRecord& upsert(ObjectId id, Value value, ValidationTs wts);

  /// Transactional delete: the record becomes a tombstone that keeps its
  /// timestamps (and records the deleter's `wts`). Creates the tombstone if
  /// the object never existed, so the deletion is still observable.
  ObjectRecord& tombstone(ObjectId id, ValidationTs wts);

  /// Objects with live (non-tombstoned) content.
  [[nodiscard]] std::size_t live_size() const {
    return size_.load(std::memory_order_relaxed) -
           tombstones_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t tombstone_count() const {
    return tombstones_.load(std::memory_order_relaxed);
  }

  /// Lookup; nullptr when absent. Serial contexts only (the caller holds
  /// the commit mutex, or no concurrent mutator exists).
  [[nodiscard]] const ObjectRecord* find(ObjectId id) const;
  [[nodiscard]] ObjectRecord* find_mutable(ObjectId id);

  /// Lock-free committed read: copies a consistent snapshot of the record
  /// into `out` (value, rts, wts, deleted), retrying while an in-place
  /// writer holds the record's seqlock. Holds the shared table lock for the
  /// duration, so structural changes (rehash, slot shifts, heap payload
  /// swaps) cannot move the record underneath the copy. `retries` reports
  /// how many torn attempts were discarded.
  OptimisticRead read_optimistic(
      ObjectId id, ObjectRecord& out, std::uint32_t& retries,
      std::uint32_t max_retries = kDefaultOptimisticRetries) const;

  /// Parallel-safe timestamp snapshot (rts, wts) under the shared table
  /// lock; nullopt when the object is absent. Used by validators that run
  /// concurrently with installers of *other* records. The two loads are not
  /// mutually atomic — callers order themselves with the validation mutex.
  [[nodiscard]] std::optional<std::pair<ValidationTs, ValidationTs>>
  timestamps_of(ObjectId id) const;

  /// Parallel-safe monotone read-timestamp bump under the shared table
  /// lock; false when the object is absent. Concurrent callers must be
  /// serialized against each other (the engine's validation mutex does
  /// this) — the bump itself is check-then-store.
  bool bump_rts(ObjectId id, ValidationTs ts);

  bool erase(ObjectId id);

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Visit every live object (iteration order is unspecified but stable
  /// between mutations). Used by checkpointing and snapshot shipping.
  void for_each(const std::function<void(ObjectId, const ObjectRecord&)>& fn) const;

  /// Remove everything (recovery restart).
  void clear();

  /// Table load factor diagnostics.
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  // ---- fuzzy snapshot mode (DESIGN.md §15) ------------------------------
  // snapshot_begin() flips the snapshot epoch in O(1); the caller must
  // exclude every writer for the flip (the engine's install gate held
  // exclusively). Afterwards writers run freely: the first post-flip write
  // to a not-yet-captured record copies the old version into a per-stripe
  // retain list (CoW on first write), and snapshot_scan walks the table
  // off-lock, reading live records through their seqlocks and retained
  // versions where a writer got there first. The result is equivalent to a
  // point-in-time snapshot at the flip.

  struct SnapshotScanStats {
    std::uint64_t emitted{0};           ///< rows handed to the callback
    std::uint64_t retained_emitted{0};  ///< of those, from the retain list
    std::uint64_t passes{0};            ///< table walks (restarts included)
    std::uint64_t locked_passes{0};     ///< degraded full-lock passes
  };

  /// Flip the snapshot epoch; returns the capture epoch E. Records with
  /// dirty_epoch <= E belong to the snapshot; post-flip writers stamp E+1.
  /// Requires external writer exclusion for the duration of the call.
  std::uint64_t snapshot_begin();
  /// Release the retain lists. Safe with writers running (stragglers that
  /// raced the deactivation are purged by the next snapshot_begin).
  void snapshot_end();
  [[nodiscard]] bool snapshot_active() const {
    return snapshot_active_.load(std::memory_order_acquire);
  }
  /// Capture epoch of the active snapshot (valid between begin and end).
  [[nodiscard]] std::uint64_t snapshot_epoch() const {
    return capture_epoch_.load(std::memory_order_relaxed);
  }
  /// Current mutation epoch (what the next write will stamp).
  [[nodiscard]] std::uint64_t mutation_epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Walk the active snapshot, emitting every record (tombstones included)
  /// whose snapshot-time dirty_epoch is > `floor_epoch` — 0 for a full
  /// base, the previous capture epoch for a delta. Single encoder thread;
  /// holds the shared table lock only in short chunks, so in-place writers
  /// are never blocked and structural writers only per-chunk.
  SnapshotScanStats snapshot_scan(
      std::uint64_t floor_epoch,
      const std::function<void(ObjectId, const Value&, ValidationTs wts,
                               bool deleted)>& fn);

 private:
  struct Slot {
    ObjectId id{kInvalidObject};
    std::uint32_t probe{0};  // probe-sequence length + 1; 0 == empty
    ObjectRecord record;
  };

  [[nodiscard]] static std::size_t hash_of(ObjectId id);
  [[nodiscard]] std::size_t mask() const { return slots_.size() - 1; }
  void grow();
  Slot* locate(ObjectId id);
  [[nodiscard]] const Slot* locate(ObjectId id) const;
  ObjectRecord& insert_internal(ObjectId id, ObjectRecord record);

  // ---- fuzzy snapshot internals -----------------------------------------
  /// Pre-flip version kept aside by the first post-flip writer.
  struct RetainEntry {
    Value value;
    ValidationTs wts{0};
    bool deleted{false};
    std::uint64_t dirty_epoch{0};
  };
  struct RetainStripe {
    std::mutex mu;
    std::unordered_map<ObjectId, RetainEntry> map;
  };
  static constexpr std::size_t kRetainStripes = 64;

  [[nodiscard]] RetainStripe& stripe_for(ObjectId id) {
    return retain_[hash_of(id) & (kRetainStripes - 1)];
  }
  /// CoW hook: called by every mutator BEFORE it overwrites a record (the
  /// insert-before-write ordering is what makes the walker's seqlock
  /// fallback race-free). No-op when no snapshot is active or the record
  /// was already captured/retained.
  void maybe_retain(ObjectId id, ObjectRecord& rec);
  /// Walk one slot for snapshot_scan: seqlock-read the record, emit the
  /// pre-flip version (directly or from the retain list) and stamp it
  /// captured. Requires the shared table lock.
  void scan_slot(Slot& s, std::uint64_t capture, std::uint64_t floor_epoch,
                 SnapshotScanStats& stats,
                 const std::function<void(ObjectId, const Value&, ValidationTs,
                                          bool)>& fn);

  std::array<RetainStripe, kRetainStripes> retain_;
  std::atomic<bool> snapshot_active_{false};
  /// Mutation epoch: every write stamps the current value into the record;
  /// snapshot_begin() bumps it so post-flip writes are distinguishable.
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> capture_epoch_{0};
  /// Diagnostic: live retain entries across all stripes.
  std::atomic<std::uint64_t> retained_count_{0};
  /// Bumped by every structural slot movement (insert displacement, grow,
  /// erase back-shift, clear): an off-lock walk whose generation changed
  /// restarts, relying on captured_epoch stamps to stay O(missed).
  std::atomic<std::uint64_t> table_gen_{0};

  std::vector<Slot> slots_;
  /// Atomic because the in-place mutator paths (which hold only the shared
  /// table lock on the parallel commit path) revive and create tombstones.
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> tombstones_{0};

  /// Writer-side unique acquisitions fence every optimistic reader out of
  /// the table; shared acquisitions (readers) ride alongside in-place
  /// seqlocked updates. Counted into `store.rehash_fences`.
  mutable std::shared_mutex table_mu_;
};

}  // namespace rodain::storage
