// The main-memory object store: a robin-hood open-addressing table mapping
// ObjectId to the object's payload plus the OCC timestamps (largest committed
// reader / writer) the concurrency controllers consult at validation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rodain/common/status.hpp"
#include "rodain/common/types.hpp"
#include "rodain/storage/value.hpp"

namespace rodain::storage {

/// One stored object. `rts`/`wts` are the largest validation timestamps of
/// committed readers/writers — the state OCC-TI/OCC-DATI intervals are
/// computed against. Deleted objects stay as tombstones (`deleted`, empty
/// value) so that a later reader still observes the deleter's `wts` and the
/// serialization intervals remain sound; garbage collection of tombstones
/// is an offline concern (compaction drops them).
struct ObjectRecord {
  Value value;
  ValidationTs rts{0};
  ValidationTs wts{0};
  bool deleted{false};

  [[nodiscard]] bool live() const { return !deleted; }
};

class ObjectStore {
 public:
  explicit ObjectStore(std::size_t expected_objects = 1024);

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;
  ObjectStore(ObjectStore&&) = default;
  ObjectStore& operator=(ObjectStore&&) = default;

  /// Insert a new object; fails with kAlreadyExists if the id is taken.
  Status insert(ObjectId id, Value value);

  /// Insert or overwrite (used by the mirror applier and recovery, which
  /// replay after-images without knowing whether the object pre-existed).
  /// Revives tombstones.
  ObjectRecord& upsert(ObjectId id, Value value, ValidationTs wts);

  /// Transactional delete: the record becomes a tombstone that keeps its
  /// timestamps (and records the deleter's `wts`). Creates the tombstone if
  /// the object never existed, so the deletion is still observable.
  ObjectRecord& tombstone(ObjectId id, ValidationTs wts);

  /// Objects with live (non-tombstoned) content.
  [[nodiscard]] std::size_t live_size() const { return size_ - tombstones_; }
  [[nodiscard]] std::size_t tombstone_count() const { return tombstones_; }

  /// Lookup; nullptr when absent.
  [[nodiscard]] const ObjectRecord* find(ObjectId id) const;
  [[nodiscard]] ObjectRecord* find_mutable(ObjectId id);

  bool erase(ObjectId id);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Visit every live object (iteration order is unspecified but stable
  /// between mutations). Used by checkpointing and snapshot shipping.
  void for_each(const std::function<void(ObjectId, const ObjectRecord&)>& fn) const;

  /// Remove everything (recovery restart).
  void clear();

  /// Table load factor diagnostics.
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    ObjectId id{kInvalidObject};
    std::uint32_t probe{0};  // probe-sequence length + 1; 0 == empty
    ObjectRecord record;
  };

  [[nodiscard]] static std::size_t hash_of(ObjectId id);
  [[nodiscard]] std::size_t mask() const { return slots_.size() - 1; }
  void grow();
  Slot* locate(ObjectId id);
  [[nodiscard]] const Slot* locate(ObjectId id) const;
  ObjectRecord& insert_internal(ObjectId id, ObjectRecord record);

  std::vector<Slot> slots_;
  std::size_t size_{0};
  std::size_t tombstones_{0};
};

}  // namespace rodain::storage
