// Checkpoint-chain manifest (DESIGN.md §15).
//
// Fuzzy checkpoints produce a chain of artifacts — one full base plus zero
// or more incremental deltas — and this manifest is the single atomically-
// replaced source of truth naming them. Recovery and join serving read the
// manifest first; artifact files not named by it (crash leftovers from a
// kill between artifact write and manifest rename) are simply ignored, and
// segment truncation keys off the manifest's covered boundary, never off an
// artifact that the manifest does not yet acknowledge.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rodain/common/serialization.hpp"
#include "rodain/common/status.hpp"

namespace rodain::storage {

struct ManifestEntry {
  enum class Kind : std::uint8_t { kBase = 0, kDelta = 1 };
  Kind kind{Kind::kBase};
  std::uint64_t boundary{0};       ///< txns with ts <= this are covered
  std::uint64_t capture_epoch{0};  ///< store mutation epoch at the flip
  std::uint64_t bytes{0};          ///< artifact size (inventory/metrics)
  std::string file;                ///< basename, sibling of the manifest
};

struct CkptManifest {
  /// Base first, then deltas in capture order.
  std::vector<ManifestEntry> entries;

  /// Highest boundary the chain covers; 0 when empty.
  [[nodiscard]] std::uint64_t covered_boundary() const {
    return entries.empty() ? 0 : entries.back().boundary;
  }
};

/// `<checkpoint_path>.manifest` — sibling of the legacy single-file path.
[[nodiscard]] std::string manifest_path_for(const std::string& checkpoint_path);

/// Resolve a manifest entry's basename against the manifest's directory.
[[nodiscard]] std::string sibling_path(const std::string& manifest_path,
                                       const std::string& file);

void encode_manifest(const CkptManifest& m, ByteWriter& out);
Result<CkptManifest> decode_manifest(std::span<const std::byte> data);

/// Atomic (temp + fsync + rename) manifest replacement.
Status write_manifest_file(const CkptManifest& m, const std::string& path);
/// kNotFound when absent/empty; kCorruption on CRC or structural damage
/// (missing base, non-monotone boundaries).
Result<CkptManifest> read_manifest_file(const std::string& path);

}  // namespace rodain::storage
