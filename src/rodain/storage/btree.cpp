#include "rodain/storage/btree.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace rodain::storage {

IndexKey IndexKey::from_string(std::string_view s) {
  IndexKey k{};
  const std::size_t n = std::min(s.size(), k.bytes.size());
  std::memcpy(k.bytes.data(), s.data(), n);
  return k;
}

IndexKey IndexKey::from_u64(std::uint64_t v) {
  IndexKey k{};
  for (int i = 0; i < 8; ++i) {
    k.bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * (7 - i))) & 0xff);
  }
  return k;
}

IndexKey IndexKey::max() {
  IndexKey k{};
  k.bytes.fill(0xff);
  return k;
}

std::string IndexKey::to_string() const {
  std::string s;
  for (std::uint8_t b : bytes) {
    if (b == 0) break;
    if (b >= 0x20 && b < 0x7f) {
      s.push_back(static_cast<char>(b));
    } else {
      char hex[5];
      std::snprintf(hex, sizeof hex, "\\x%02x", b);
      s += hex;
    }
  }
  return s;
}

struct BPlusTree::Node {
  bool leaf{true};
  std::vector<IndexKey> keys;           // sorted
  std::vector<ObjectId> values;         // leaf only, parallel to keys
  std::vector<Node*> children;          // internal only, keys.size()+1
  Node* next{nullptr};                  // leaf chain
  Node* prev{nullptr};

  [[nodiscard]] std::size_t count() const { return keys.size(); }
};

struct BPlusTree::InsertResult {
  bool inserted{false};
  Node* split_right{nullptr};  // non-null when the child split
  IndexKey split_key{};        // separator to push up
};

namespace {
constexpr std::size_t kMinKeys = BPlusTree::kOrder / 2;

/// Index of the first key >= `key`.
std::size_t lower_bound_in(const std::vector<IndexKey>& keys, const IndexKey& key) {
  return static_cast<std::size_t>(
      std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
}

/// Child slot to descend into for `key` in an internal node: keys act as
/// separators, child[i] holds keys < keys[i]... child chosen as upper_bound.
std::size_t child_slot(const std::vector<IndexKey>& keys, const IndexKey& key) {
  return static_cast<std::size_t>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}
}  // namespace

BPlusTree::BPlusTree() : root_(new Node{}) {}

BPlusTree::~BPlusTree() { destroy(root_); }

BPlusTree::BPlusTree(BPlusTree&& o) noexcept : root_(o.root_), size_(o.size_) {
  o.root_ = new Node{};
  o.size_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& o) noexcept {
  if (this != &o) {
    destroy(root_);
    root_ = o.root_;
    size_ = o.size_;
    o.root_ = new Node{};
    o.size_ = 0;
  }
  return *this;
}

void BPlusTree::destroy(Node* n) {
  if (!n) return;
  if (!n->leaf) {
    for (Node* c : n->children) destroy(c);
  }
  delete n;
}

BPlusTree::Node* BPlusTree::leaf_for(const IndexKey& key) const {
  Node* n = root_;
  while (!n->leaf) {
    n = n->children[child_slot(n->keys, key)];
  }
  return n;
}

std::optional<ObjectId> BPlusTree::find(const IndexKey& key) const {
  std::shared_lock lock(mu_);
  const Node* n = leaf_for(key);
  const std::size_t i = lower_bound_in(n->keys, key);
  if (i < n->count() && n->keys[i] == key) return n->values[i];
  return std::nullopt;
}

bool BPlusTree::insert(const IndexKey& key, ObjectId value) {
  std::unique_lock lock(mu_);
  InsertResult r = insert_rec(root_, key, value);
  if (!r.inserted) return false;
  if (r.split_right) {
    auto* new_root = new Node{};
    new_root->leaf = false;
    new_root->keys.push_back(r.split_key);
    new_root->children = {root_, r.split_right};
    root_ = new_root;
  }
  ++size_;
  if (journal_enabled_) {
    journal_.push_back({IndexOp::Kind::kUpsert, key, value});
  }
  return true;
}

BPlusTree::InsertResult BPlusTree::insert_rec(Node* n, const IndexKey& key,
                                              ObjectId value) {
  if (n->leaf) {
    const std::size_t i = lower_bound_in(n->keys, key);
    if (i < n->count() && n->keys[i] == key) return {};  // duplicate
    n->keys.insert(n->keys.begin() + static_cast<std::ptrdiff_t>(i), key);
    n->values.insert(n->values.begin() + static_cast<std::ptrdiff_t>(i), value);
    if (n->count() <= kOrder) return {true, nullptr, {}};

    // Split the leaf: right half moves to a new node; separator is the
    // first key of the right node (B+ convention: it stays in the leaf).
    auto* right = new Node{};
    const std::size_t mid = n->count() / 2;
    right->keys.assign(n->keys.begin() + static_cast<std::ptrdiff_t>(mid), n->keys.end());
    right->values.assign(n->values.begin() + static_cast<std::ptrdiff_t>(mid), n->values.end());
    n->keys.resize(mid);
    n->values.resize(mid);
    right->next = n->next;
    right->prev = n;
    if (n->next) n->next->prev = right;
    n->next = right;
    return {true, right, right->keys.front()};
  }

  const std::size_t slot = child_slot(n->keys, key);
  InsertResult r = insert_rec(n->children[slot], key, value);
  if (!r.inserted || !r.split_right) return r;

  n->keys.insert(n->keys.begin() + static_cast<std::ptrdiff_t>(slot), r.split_key);
  n->children.insert(n->children.begin() + static_cast<std::ptrdiff_t>(slot) + 1,
                     r.split_right);
  if (n->count() <= kOrder) return {true, nullptr, {}};

  // Split the internal node: the middle key moves up (it does NOT stay).
  auto* right = new Node{};
  right->leaf = false;
  const std::size_t mid = n->count() / 2;
  const IndexKey up = n->keys[mid];
  right->keys.assign(n->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1, n->keys.end());
  right->children.assign(n->children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                         n->children.end());
  n->keys.resize(mid);
  n->children.resize(mid + 1);
  return {true, right, up};
}

bool BPlusTree::update(const IndexKey& key, ObjectId value) {
  std::unique_lock lock(mu_);
  Node* n = leaf_for(key);
  const std::size_t i = lower_bound_in(n->keys, key);
  if (i < n->count() && n->keys[i] == key) {
    n->values[i] = value;
    if (journal_enabled_) {
      journal_.push_back({IndexOp::Kind::kUpsert, key, value});
    }
    return true;
  }
  return false;
}

bool BPlusTree::erase(const IndexKey& key) {
  std::unique_lock lock(mu_);
  if (!erase_rec(root_, key)) return false;
  if (!root_->leaf && root_->count() == 0) {
    Node* old = root_;
    root_ = root_->children[0];
    old->children.clear();
    delete old;
  }
  --size_;
  if (journal_enabled_) {
    journal_.push_back({IndexOp::Kind::kErase, key, kInvalidObject});
  }
  return true;
}

bool BPlusTree::erase_rec(Node* n, const IndexKey& key) {
  if (n->leaf) {
    const std::size_t i = lower_bound_in(n->keys, key);
    if (i >= n->count() || !(n->keys[i] == key)) return false;
    n->keys.erase(n->keys.begin() + static_cast<std::ptrdiff_t>(i));
    n->values.erase(n->values.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }
  const std::size_t slot = child_slot(n->keys, key);
  if (!erase_rec(n->children[slot], key)) return false;
  if (n->children[slot]->count() < kMinKeys) rebalance_child(n, slot);
  return true;
}

void BPlusTree::rebalance_child(Node* parent, std::size_t idx) {
  Node* child = parent->children[idx];

  // Try borrowing from the left sibling.
  if (idx > 0) {
    Node* left = parent->children[idx - 1];
    if (left->count() > kMinKeys) {
      if (child->leaf) {
        child->keys.insert(child->keys.begin(), left->keys.back());
        child->values.insert(child->values.begin(), left->values.back());
        left->keys.pop_back();
        left->values.pop_back();
        parent->keys[idx - 1] = child->keys.front();
      } else {
        child->keys.insert(child->keys.begin(), parent->keys[idx - 1]);
        parent->keys[idx - 1] = left->keys.back();
        left->keys.pop_back();
        child->children.insert(child->children.begin(), left->children.back());
        left->children.pop_back();
      }
      return;
    }
  }

  // Try borrowing from the right sibling.
  if (idx + 1 < parent->children.size()) {
    Node* right = parent->children[idx + 1];
    if (right->count() > kMinKeys) {
      if (child->leaf) {
        child->keys.push_back(right->keys.front());
        child->values.push_back(right->values.front());
        right->keys.erase(right->keys.begin());
        right->values.erase(right->values.begin());
        parent->keys[idx] = right->keys.front();
      } else {
        child->keys.push_back(parent->keys[idx]);
        parent->keys[idx] = right->keys.front();
        right->keys.erase(right->keys.begin());
        child->children.push_back(right->children.front());
        right->children.erase(right->children.begin());
      }
      return;
    }
  }

  // Merge with a sibling. Normalize so we merge `right` into `left`.
  std::size_t li = idx > 0 ? idx - 1 : idx;
  Node* left = parent->children[li];
  Node* right = parent->children[li + 1];
  if (left->leaf) {
    left->keys.insert(left->keys.end(), right->keys.begin(), right->keys.end());
    left->values.insert(left->values.end(), right->values.begin(), right->values.end());
    left->next = right->next;
    if (right->next) right->next->prev = left;
  } else {
    left->keys.push_back(parent->keys[li]);
    left->keys.insert(left->keys.end(), right->keys.begin(), right->keys.end());
    left->children.insert(left->children.end(), right->children.begin(),
                          right->children.end());
    right->children.clear();
  }
  parent->keys.erase(parent->keys.begin() + static_cast<std::ptrdiff_t>(li));
  parent->children.erase(parent->children.begin() + static_cast<std::ptrdiff_t>(li) + 1);
  delete right;
}

void BPlusTree::range_scan(
    const IndexKey& lo, const IndexKey& hi,
    const std::function<bool(const IndexKey&, ObjectId)>& fn) const {
  std::shared_lock lock(mu_);
  const Node* n = leaf_for(lo);
  std::size_t i = lower_bound_in(n->keys, lo);
  while (n) {
    for (; i < n->count(); ++i) {
      if (hi < n->keys[i]) return;
      if (!fn(n->keys[i], n->values[i])) return;
    }
    n = n->next;
    i = 0;
  }
}

std::size_t BPlusTree::height() const {
  std::shared_lock lock(mu_);
  return height_unlocked();
}

std::size_t BPlusTree::height_unlocked() const {
  std::size_t h = 1;
  const Node* n = root_;
  while (!n->leaf) {
    n = n->children[0];
    ++h;
  }
  return h;
}

void BPlusTree::set_journal(bool enabled) {
  std::unique_lock lock(mu_);
  journal_.clear();
  journal_enabled_ = enabled;
}

std::vector<IndexOp> BPlusTree::cut_journal() {
  std::unique_lock lock(mu_);
  std::vector<IndexOp> out = std::move(journal_);
  journal_.clear();
  return out;
}

void BPlusTree::restore_journal(std::vector<IndexOp> ops) {
  std::unique_lock lock(mu_);
  ops.insert(ops.end(), std::make_move_iterator(journal_.begin()),
             std::make_move_iterator(journal_.end()));
  journal_ = std::move(ops);
}

bool BPlusTree::journal_enabled() const {
  std::shared_lock lock(mu_);
  return journal_enabled_;
}

namespace {
/// Advance `k` to the smallest key strictly greater than it; false when `k`
/// is already the maximum key.
bool key_successor(IndexKey& k) {
  for (std::size_t i = k.bytes.size(); i-- > 0;) {
    if (k.bytes[i] != 0xff) {
      ++k.bytes[i];
      std::fill(k.bytes.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                k.bytes.end(), std::uint8_t{0});
      return true;
    }
    k.bytes[i] = 0;
  }
  return false;
}
}  // namespace

void BPlusTree::chunked_scan(
    std::size_t chunk,
    const std::function<void(const IndexKey&, ObjectId)>& fn) const {
  if (chunk == 0) chunk = 1;
  IndexKey cursor = IndexKey::min();
  while (true) {
    std::shared_lock lock(mu_);
    const Node* n = leaf_for(cursor);
    std::size_t i = lower_bound_in(n->keys, cursor);
    std::size_t emitted = 0;
    IndexKey last{};
    while (n && emitted < chunk) {
      for (; i < n->count() && emitted < chunk; ++i) {
        fn(n->keys[i], n->values[i]);
        last = n->keys[i];
        ++emitted;
      }
      if (emitted >= chunk) break;
      n = n->next;
      i = 0;
    }
    if (emitted < chunk) return;  // tail (or empty) chunk — done
    cursor = last;
    if (!key_successor(cursor)) return;  // resumed past the maximum key
  }
}

Status BPlusTree::validate() const {
  std::shared_lock lock(mu_);
  std::size_t leaf_depth = height_unlocked();
  if (auto s = validate_rec(root_, nullptr, nullptr, 1, leaf_depth); !s) return s;

  // Leaf chain must enumerate exactly size() entries in strict key order.
  const Node* n = root_;
  while (!n->leaf) n = n->children[0];
  std::size_t seen = 0;
  const IndexKey* prev = nullptr;
  const Node* prev_leaf = nullptr;
  while (n) {
    if (n->prev != prev_leaf) {
      return Status::error(ErrorCode::kInternal, "leaf prev link broken");
    }
    for (const IndexKey& k : n->keys) {
      if (prev && !(*prev < k)) {
        return Status::error(ErrorCode::kInternal, "leaf chain out of order");
      }
      prev = &k;
      ++seen;
    }
    prev_leaf = n;
    n = n->next;
  }
  if (seen != size_) {
    return Status::error(ErrorCode::kInternal, "size mismatch with leaf chain");
  }
  return Status::ok();
}

Status BPlusTree::validate_rec(const Node* n, const IndexKey* lo,
                               const IndexKey* hi, std::size_t depth,
                               std::size_t leaf_depth) const {
  if (!std::is_sorted(n->keys.begin(), n->keys.end())) {
    return Status::error(ErrorCode::kInternal, "node keys unsorted");
  }
  for (const IndexKey& k : n->keys) {
    if (lo && k < *lo) return Status::error(ErrorCode::kInternal, "key below bound");
    if (hi && !(k < *hi)) return Status::error(ErrorCode::kInternal, "key above bound");
  }
  if (n != root_ && n->count() < kMinKeys) {
    return Status::error(ErrorCode::kInternal, "node underfull");
  }
  if (n->count() > kOrder) {
    return Status::error(ErrorCode::kInternal, "node overfull");
  }
  if (n->leaf) {
    if (depth != leaf_depth) {
      return Status::error(ErrorCode::kInternal, "leaves at unequal depth");
    }
    if (n->values.size() != n->keys.size()) {
      return Status::error(ErrorCode::kInternal, "leaf arity mismatch");
    }
    return Status::ok();
  }
  if (n->children.size() != n->keys.size() + 1) {
    return Status::error(ErrorCode::kInternal, "internal arity mismatch");
  }
  for (std::size_t i = 0; i < n->children.size(); ++i) {
    const IndexKey* clo = i == 0 ? lo : &n->keys[i - 1];
    const IndexKey* chi = i == n->keys.size() ? hi : &n->keys[i];
    if (auto s = validate_rec(n->children[i], clo, chi, depth + 1, leaf_depth); !s) {
      return s;
    }
  }
  return Status::ok();
}

}  // namespace rodain::storage
