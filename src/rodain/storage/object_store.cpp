#include "rodain/storage/object_store.hpp"

#include <bit>
#include <cassert>
#include <mutex>
#include <thread>
#include <utility>

#include "rodain/obs/obs.hpp"

namespace rodain::storage {

namespace {
std::size_t next_pow2(std::size_t n) {
  return std::bit_ceil(n < 16 ? std::size_t{16} : n);
}

struct StoreMetrics {
  obs::Counter& rehash_fences = obs::metrics().counter("store.rehash_fences");
  obs::Counter& records_retained =
      obs::metrics().counter("ckpt.records_retained");
};
StoreMetrics& sm() {
  static StoreMetrics m;
  return m;
}
}  // namespace

ObjectStore::ObjectStore(std::size_t expected_objects) {
  slots_.resize(next_pow2(expected_objects * 2));
}

std::size_t ObjectStore::hash_of(ObjectId id) {
  // Fibonacci/xor-fold mix; ObjectIds are often sequential.
  std::uint64_t x = id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

Status ObjectStore::insert(ObjectId id, Value value) {
  std::unique_lock fence(table_mu_);
  sm().rehash_fences.inc();
  if (locate(id) != nullptr) {
    return Status::error(ErrorCode::kAlreadyExists, "object id taken");
  }
  ObjectRecord rec;
  rec.value = std::move(value);
  rec.dirty_epoch = epoch_.load(std::memory_order_relaxed);
  insert_internal(id, std::move(rec));
  return Status::ok();
}

ObjectRecord& ObjectStore::upsert(ObjectId id, Value value, ValidationTs wts) {
  // Fast path: overwrite the record in place under its seqlock, holding
  // only the shared table lock — structural mutators (unique holders)
  // cannot move the slot underneath us, and installers of the same oid are
  // excluded by the caller's write intent (or the commit mutex in serial
  // contexts). Only possible when neither the old nor the new payload owns
  // heap memory: freeing (or publishing) a heap buffer while a racing
  // reader may be mid-copy needs the unique fence.
  {
    std::shared_lock table(table_mu_);
    if (Slot* s = locate(id)) {
      ObjectRecord& rec = s->record;
      if (rec.value.is_inline() && value.is_inline()) {
        // CoW for the active snapshot BEFORE the seqlock write: a walker
        // that observes the new version (via the seqlock's release edge)
        // is guaranteed to find the retained old one.
        maybe_retain(id, rec);
        rec.write_begin();
        rec.value.store_inline_relaxed(value.view());
        rec.bump_wts(wts);
        if (std::atomic_ref<bool>(rec.deleted)
                .load(std::memory_order_relaxed)) {
          std::atomic_ref<bool>(rec.deleted).store(false,
                                                   std::memory_order_relaxed);
          tombstones_.fetch_sub(1, std::memory_order_relaxed);  // revived
        }
        rec.set_dirty_epoch(epoch_.load(std::memory_order_relaxed));
        rec.write_end();
        return rec;
      }
    }
  }
  std::unique_lock fence(table_mu_);
  sm().rehash_fences.inc();
  // Re-locate: the slot found under the shared lock is not pinned across
  // the lock change.
  if (Slot* s = locate(id)) {
    ObjectRecord& rec = s->record;
    maybe_retain(id, rec);
    rec.value = std::move(value);
    if (wts > rec.wts) rec.wts = wts;
    if (rec.deleted) {
      rec.deleted = false;  // revived
      tombstones_.fetch_sub(1, std::memory_order_relaxed);
    }
    rec.dirty_epoch = epoch_.load(std::memory_order_relaxed);
    return rec;
  }
  ObjectRecord rec;
  rec.value = std::move(value);
  rec.wts = wts;
  rec.dirty_epoch = epoch_.load(std::memory_order_relaxed);
  return insert_internal(id, std::move(rec));
}

ObjectRecord& ObjectStore::tombstone(ObjectId id, ValidationTs wts) {
  {
    std::shared_lock table(table_mu_);
    if (Slot* s = locate(id)) {
      ObjectRecord& rec = s->record;
      if (rec.value.is_inline()) {
        maybe_retain(id, rec);
        rec.write_begin();
        rec.value.store_inline_relaxed({});
        rec.bump_wts(wts);
        if (!std::atomic_ref<bool>(rec.deleted)
                 .load(std::memory_order_relaxed)) {
          std::atomic_ref<bool>(rec.deleted).store(true,
                                                   std::memory_order_relaxed);
          tombstones_.fetch_add(1, std::memory_order_relaxed);
        }
        rec.set_dirty_epoch(epoch_.load(std::memory_order_relaxed));
        rec.write_end();
        return rec;
      }
    }
  }
  std::unique_lock fence(table_mu_);
  sm().rehash_fences.inc();
  if (Slot* s = locate(id)) {
    ObjectRecord& rec = s->record;
    maybe_retain(id, rec);
    rec.value.clear();
    if (wts > rec.wts) rec.wts = wts;
    if (!rec.deleted) {
      rec.deleted = true;
      tombstones_.fetch_add(1, std::memory_order_relaxed);
    }
    rec.dirty_epoch = epoch_.load(std::memory_order_relaxed);
    return rec;
  }
  ObjectRecord rec;
  rec.wts = wts;
  rec.deleted = true;
  rec.dirty_epoch = epoch_.load(std::memory_order_relaxed);
  tombstones_.fetch_add(1, std::memory_order_relaxed);
  return insert_internal(id, std::move(rec));
}

const ObjectRecord* ObjectStore::find(ObjectId id) const {
  const Slot* s = locate(id);
  return s ? &s->record : nullptr;
}

ObjectRecord* ObjectStore::find_mutable(ObjectId id) {
  Slot* s = locate(id);
  return s ? &s->record : nullptr;
}

OptimisticRead ObjectStore::read_optimistic(ObjectId id, ObjectRecord& out,
                                            std::uint32_t& retries,
                                            std::uint32_t max_retries) const {
  std::shared_lock table(table_mu_);
  const Slot* s = locate(id);
  if (s == nullptr) {
    retries = 0;
    return OptimisticRead::kMiss;
  }
  const ObjectRecord& rec = s->record;
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (attempt > max_retries) {
      retries = attempt;
      return OptimisticRead::kContended;
    }
    const std::uint32_t s1 = rec.seq_acquire();
    if (s1 & 1u) continue;  // writer mid-update
    std::uint64_t words[Value::kInlineWords];
    std::size_t value_size = 0;
    ValidationTs rts = 0;
    ValidationTs wts = 0;
    bool deleted = false;
    bool inline_payload = rec.value.load_inline_relaxed(words, value_size);
    Value heap_copy;
    if (!inline_payload) {
      // Heap payloads only mutate under the unique table lock, which we
      // exclude by holding the shared lock — the buffer is stable even if
      // the seqlock says a (necessarily inline-path) writer is active.
      heap_copy = rec.value;
    }
    // atomic_ref<const T> arrives in C++26; const_cast for the loads.
    rts = std::atomic_ref<ValidationTs>(const_cast<ValidationTs&>(rec.rts))
              .load(std::memory_order_relaxed);
    wts = std::atomic_ref<ValidationTs>(const_cast<ValidationTs&>(rec.wts))
              .load(std::memory_order_relaxed);
    deleted = std::atomic_ref<bool>(const_cast<bool&>(rec.deleted))
                  .load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (rec.seq_relaxed() != s1) continue;  // torn — retry
    if (inline_payload) {
      out.value.assign(std::as_bytes(std::span{words}).first(value_size));
    } else {
      out.value = std::move(heap_copy);
    }
    out.rts = rts;
    out.wts = wts;
    out.deleted = deleted;
    retries = attempt;
    return OptimisticRead::kHit;
  }
}

std::optional<std::pair<ValidationTs, ValidationTs>> ObjectStore::timestamps_of(
    ObjectId id) const {
  std::shared_lock table(table_mu_);
  const Slot* s = locate(id);
  if (s == nullptr) return std::nullopt;
  const ObjectRecord& rec = s->record;
  const ValidationTs rts =
      std::atomic_ref<ValidationTs>(const_cast<ValidationTs&>(rec.rts))
          .load(std::memory_order_relaxed);
  const ValidationTs wts =
      std::atomic_ref<ValidationTs>(const_cast<ValidationTs&>(rec.wts))
          .load(std::memory_order_relaxed);
  return std::make_pair(rts, wts);
}

bool ObjectStore::bump_rts(ObjectId id, ValidationTs ts) {
  std::shared_lock table(table_mu_);
  if (Slot* s = locate(id)) {
    s->record.bump_rts(ts);
    return true;
  }
  return false;
}

bool ObjectStore::erase(ObjectId id) {
  std::unique_lock fence(table_mu_);
  sm().rehash_fences.inc();
  Slot* s = locate(id);
  if (!s) return false;
  // The retained copy is the only way an erased record still reaches the
  // snapshot walker (the final retain sweep emits it).
  maybe_retain(id, s->record);
  table_gen_.fetch_add(1, std::memory_order_release);
  if (s->record.deleted) tombstones_.fetch_sub(1, std::memory_order_relaxed);
  // Backward-shift deletion keeps probe sequences contiguous.
  std::size_t i = static_cast<std::size_t>(s - slots_.data());
  while (true) {
    std::size_t next = (i + 1) & mask();
    if (slots_[next].probe <= 1) break;
    slots_[i] = std::move(slots_[next]);
    --slots_[i].probe;
    i = next;
  }
  slots_[i] = Slot{};
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void ObjectStore::for_each(
    const std::function<void(ObjectId, const ObjectRecord&)>& fn) const {
  for (const Slot& s : slots_) {
    if (s.probe != 0) fn(s.id, s.record);
  }
}

void ObjectStore::clear() {
  std::unique_lock fence(table_mu_);
  sm().rehash_fences.inc();
  table_gen_.fetch_add(1, std::memory_order_release);
  for (Slot& s : slots_) s = Slot{};
  size_.store(0, std::memory_order_relaxed);
  tombstones_.store(0, std::memory_order_relaxed);
}

void ObjectStore::grow() {
  // Callers already hold table_mu_ exclusively (every insert path fences).
  table_gen_.fetch_add(1, std::memory_order_release);
  std::vector<Slot> old = std::move(slots_);
  slots_.clear();
  slots_.resize(old.size() * 2);
  size_.store(0, std::memory_order_relaxed);
  for (Slot& s : old) {
    if (s.probe != 0) insert_internal(s.id, std::move(s.record));
  }
}

ObjectStore::Slot* ObjectStore::locate(ObjectId id) {
  std::size_t i = hash_of(id) & mask();
  std::uint32_t probe = 1;
  while (true) {
    Slot& s = slots_[i];
    if (s.probe == 0 || s.probe < probe) return nullptr;
    if (s.id == id) return &s;
    i = (i + 1) & mask();
    ++probe;
  }
}

const ObjectStore::Slot* ObjectStore::locate(ObjectId id) const {
  return const_cast<ObjectStore*>(this)->locate(id);
}

ObjectRecord& ObjectStore::insert_internal(ObjectId id, ObjectRecord record) {
  table_gen_.fetch_add(1, std::memory_order_release);
  if ((size_.load(std::memory_order_relaxed) + 1) * 10 >= slots_.size() * 9) {
    grow();  // keep load < 0.9
  }
  std::size_t i = hash_of(id) & mask();
  Slot incoming;
  incoming.id = id;
  incoming.probe = 1;
  incoming.record = std::move(record);
  ObjectRecord* inserted = nullptr;
  while (true) {
    Slot& s = slots_[i];
    if (s.probe == 0) {
      s = std::move(incoming);
      size_.fetch_add(1, std::memory_order_relaxed);
      return inserted ? *inserted : s.record;
    }
    if (s.probe < incoming.probe) {
      std::swap(s, incoming);
      if (!inserted) inserted = &s.record;
    }
    i = (i + 1) & mask();
    ++incoming.probe;
  }
}

// ---- fuzzy snapshot mode (DESIGN.md §15) ----------------------------------

std::uint64_t ObjectStore::snapshot_begin() {
  // Purge stragglers from the previous snapshot: a writer that raced
  // snapshot_end's deactivation may have inserted an entry after the stripes
  // were cleared. Writers are externally excluded here, so the purge is the
  // last word.
  for (RetainStripe& st : retain_) {
    std::lock_guard lk(st.mu);
    st.map.clear();
  }
  retained_count_.store(0, std::memory_order_relaxed);
  const std::uint64_t capture = epoch_.fetch_add(1, std::memory_order_relaxed);
  capture_epoch_.store(capture, std::memory_order_relaxed);
  snapshot_active_.store(true, std::memory_order_release);
  return capture;
}

void ObjectStore::snapshot_end() {
  snapshot_active_.store(false, std::memory_order_release);
  for (RetainStripe& st : retain_) {
    std::lock_guard lk(st.mu);
    st.map.clear();
  }
  retained_count_.store(0, std::memory_order_relaxed);
}

void ObjectStore::maybe_retain(ObjectId id, ObjectRecord& rec) {
  if (!snapshot_active_.load(std::memory_order_acquire)) return;
  const std::uint64_t capture = capture_epoch_.load(std::memory_order_relaxed);
  // dirty > capture: a post-flip writer already overwrote the record, so the
  // snapshot version was retained (or emitted) when *it* went first.
  if (rec.dirty_epoch_relaxed() > capture) return;
  RetainStripe& st = stripe_for(id);
  std::lock_guard lk(st.mu);
  // Re-check under the stripe mutex: the walker stamps captured_epoch before
  // taking this mutex, so observing the stamp here proves the record was
  // already emitted and the pre-image is not needed.
  if (rec.captured_epoch_relaxed() == capture) return;
  auto [it, inserted] = st.map.try_emplace(id);
  if (!inserted) return;  // an earlier writer already kept the pre-image
  it->second.value = rec.value;
  it->second.wts = rec.wts_relaxed();
  it->second.deleted =
      std::atomic_ref<bool>(rec.deleted).load(std::memory_order_relaxed);
  it->second.dirty_epoch = rec.dirty_epoch_relaxed();
  retained_count_.fetch_add(1, std::memory_order_relaxed);
  sm().records_retained.inc();
}

void ObjectStore::scan_slot(Slot& s, std::uint64_t capture,
                            std::uint64_t floor_epoch,
                            SnapshotScanStats& stats,
                            const std::function<void(ObjectId, const Value&,
                                                     ValidationTs, bool)>& fn) {
  ObjectRecord& rec = s.record;
  if (rec.captured_epoch_relaxed() == capture) return;  // already handled
  const ObjectId id = s.id;
  // Seqlock-consistent copy of (value, wts, deleted, dirty_epoch) — the same
  // idiom as read_optimistic, but spinning: writer sections are a few dozen
  // instructions and there is exactly one walker.
  Value value;
  ValidationTs wts = 0;
  bool deleted = false;
  std::uint64_t dirty = 0;
  for (;;) {
    const std::uint32_t s1 = rec.seq_acquire();
    if (s1 & 1u) {
      std::this_thread::yield();
      continue;
    }
    std::uint64_t words[Value::kInlineWords];
    std::size_t value_size = 0;
    const bool inline_payload = rec.value.load_inline_relaxed(words, value_size);
    Value heap_copy;
    if (!inline_payload) heap_copy = rec.value;  // stable under shared lock
    wts = rec.wts_relaxed();
    deleted = std::atomic_ref<bool>(const_cast<bool&>(rec.deleted))
                  .load(std::memory_order_relaxed);
    dirty = rec.dirty_epoch_relaxed();
    std::atomic_thread_fence(std::memory_order_acquire);
    if (rec.seq_relaxed() != s1) continue;
    if (inline_payload) {
      value.assign(std::as_bytes(std::span{words}).first(value_size));
    } else {
      value = std::move(heap_copy);
    }
    break;
  }
  // Stamp BEFORE touching the stripe: any writer that takes the stripe mutex
  // after us observes the stamp (mutex ordering) and skips retaining; any
  // writer that retained before us leaves an entry we consume right here.
  // Either way the id is emitted exactly once.
  rec.set_captured_epoch(capture);
  std::optional<RetainEntry> retained;
  {
    RetainStripe& st = stripe_for(id);
    std::lock_guard lk(st.mu);
    auto it = st.map.find(id);
    if (it != st.map.end()) {
      retained.emplace(std::move(it->second));
      st.map.erase(it);
      retained_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (dirty <= capture) {
    // The live version is still the snapshot version. A retain entry, if one
    // raced in, holds the same bytes (same-record mutators are serialized)
    // and is simply dropped.
    if (dirty > floor_epoch) {
      fn(id, value, wts, deleted);
      ++stats.emitted;
    }
  } else if (retained) {
    // A post-flip writer got there first; its pre-image is the snapshot
    // version.
    if (retained->dirty_epoch > floor_epoch) {
      fn(id, retained->value, retained->wts, retained->deleted);
      ++stats.emitted;
      ++stats.retained_emitted;
    }
  }
  // dirty > capture with no retain entry: the record was born after the flip
  // — not part of the snapshot.
}

ObjectStore::SnapshotScanStats ObjectStore::snapshot_scan(
    std::uint64_t floor_epoch,
    const std::function<void(ObjectId, const Value&, ValidationTs wts,
                             bool deleted)>& fn) {
  SnapshotScanStats stats;
  const std::uint64_t capture = capture_epoch_.load(std::memory_order_relaxed);
  constexpr std::size_t kChunk = 512;
  constexpr std::uint64_t kMaxRestarts = 4;
  std::uint64_t restarts = 0;
  for (;;) {
    ++stats.passes;
    if (restarts >= kMaxRestarts) {
      // Structural churn keeps invalidating the chunked walk — degrade to
      // one pass under the shared lock held throughout. In-place committers
      // still run (they only need the shared lock); only structural writers
      // (inserts of new ids, erases) wait, and captured stamps from earlier
      // passes keep this pass short.
      ++stats.locked_passes;
      std::shared_lock table(table_mu_);
      for (Slot& s : slots_) {
        if (s.probe != 0) scan_slot(s, capture, floor_epoch, stats, fn);
      }
      break;
    }
    const std::uint64_t gen = table_gen_.load(std::memory_order_acquire);
    std::size_t pos = 0;
    bool complete = true;
    while (true) {
      std::shared_lock table(table_mu_);
      if (table_gen_.load(std::memory_order_relaxed) != gen) {
        // A structural writer moved slots between chunks; restart the pass.
        // Already-captured records short-circuit, so the restart re-scans
        // only what the previous pass missed.
        complete = false;
        break;
      }
      const std::size_t end = std::min(pos + kChunk, slots_.size());
      for (; pos < end; ++pos) {
        Slot& s = slots_[pos];
        if (s.probe != 0) scan_slot(s, capture, floor_epoch, stats, fn);
      }
      if (pos >= slots_.size()) break;
    }
    if (complete) break;
    ++restarts;
  }
  // Drain pre-images of records erased before the walk reached them — the
  // only entries a completed pass can leave behind (every surviving slot was
  // stamped, so writers stopped retaining).
  for (RetainStripe& st : retain_) {
    std::unordered_map<ObjectId, RetainEntry> taken;
    {
      std::lock_guard lk(st.mu);
      taken.swap(st.map);
      retained_count_.fetch_sub(taken.size(), std::memory_order_relaxed);
    }
    for (auto& [id, entry] : taken) {
      if (entry.dirty_epoch > floor_epoch) {
        fn(id, entry.value, entry.wts, entry.deleted);
        ++stats.emitted;
        ++stats.retained_emitted;
      }
    }
  }
  return stats;
}

}  // namespace rodain::storage
