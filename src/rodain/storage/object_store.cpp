#include "rodain/storage/object_store.hpp"

#include <bit>
#include <cassert>
#include <utility>

namespace rodain::storage {

namespace {
std::size_t next_pow2(std::size_t n) {
  return std::bit_ceil(n < 16 ? std::size_t{16} : n);
}
}  // namespace

ObjectStore::ObjectStore(std::size_t expected_objects) {
  slots_.resize(next_pow2(expected_objects * 2));
}

std::size_t ObjectStore::hash_of(ObjectId id) {
  // Fibonacci/xor-fold mix; ObjectIds are often sequential.
  std::uint64_t x = id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

Status ObjectStore::insert(ObjectId id, Value value) {
  if (locate(id) != nullptr) {
    return Status::error(ErrorCode::kAlreadyExists, "object id taken");
  }
  ObjectRecord rec;
  rec.value = std::move(value);
  insert_internal(id, std::move(rec));
  return Status::ok();
}

ObjectRecord& ObjectStore::upsert(ObjectId id, Value value, ValidationTs wts) {
  if (Slot* s = locate(id)) {
    s->record.value = std::move(value);
    if (wts > s->record.wts) s->record.wts = wts;
    if (s->record.deleted) {
      s->record.deleted = false;  // revived
      --tombstones_;
    }
    return s->record;
  }
  ObjectRecord rec;
  rec.value = std::move(value);
  rec.wts = wts;
  return insert_internal(id, std::move(rec));
}

ObjectRecord& ObjectStore::tombstone(ObjectId id, ValidationTs wts) {
  if (Slot* s = locate(id)) {
    s->record.value.clear();
    if (wts > s->record.wts) s->record.wts = wts;
    if (!s->record.deleted) {
      s->record.deleted = true;
      ++tombstones_;
    }
    return s->record;
  }
  ObjectRecord rec;
  rec.wts = wts;
  rec.deleted = true;
  ++tombstones_;
  return insert_internal(id, std::move(rec));
}

const ObjectRecord* ObjectStore::find(ObjectId id) const {
  const Slot* s = locate(id);
  return s ? &s->record : nullptr;
}

ObjectRecord* ObjectStore::find_mutable(ObjectId id) {
  Slot* s = locate(id);
  return s ? &s->record : nullptr;
}

bool ObjectStore::erase(ObjectId id) {
  Slot* s = locate(id);
  if (!s) return false;
  if (s->record.deleted) --tombstones_;
  // Backward-shift deletion keeps probe sequences contiguous.
  std::size_t i = static_cast<std::size_t>(s - slots_.data());
  while (true) {
    std::size_t next = (i + 1) & mask();
    if (slots_[next].probe <= 1) break;
    slots_[i] = std::move(slots_[next]);
    --slots_[i].probe;
    i = next;
  }
  slots_[i] = Slot{};
  --size_;
  return true;
}

void ObjectStore::for_each(
    const std::function<void(ObjectId, const ObjectRecord&)>& fn) const {
  for (const Slot& s : slots_) {
    if (s.probe != 0) fn(s.id, s.record);
  }
}

void ObjectStore::clear() {
  for (Slot& s : slots_) s = Slot{};
  size_ = 0;
  tombstones_ = 0;
}

void ObjectStore::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.clear();
  slots_.resize(old.size() * 2);
  size_ = 0;
  for (Slot& s : old) {
    if (s.probe != 0) insert_internal(s.id, std::move(s.record));
  }
}

ObjectStore::Slot* ObjectStore::locate(ObjectId id) {
  std::size_t i = hash_of(id) & mask();
  std::uint32_t probe = 1;
  while (true) {
    Slot& s = slots_[i];
    if (s.probe == 0 || s.probe < probe) return nullptr;
    if (s.id == id) return &s;
    i = (i + 1) & mask();
    ++probe;
  }
}

const ObjectStore::Slot* ObjectStore::locate(ObjectId id) const {
  return const_cast<ObjectStore*>(this)->locate(id);
}

ObjectRecord& ObjectStore::insert_internal(ObjectId id, ObjectRecord record) {
  if ((size_ + 1) * 10 >= slots_.size() * 9) grow();  // keep load < 0.9
  std::size_t i = hash_of(id) & mask();
  Slot incoming;
  incoming.id = id;
  incoming.probe = 1;
  incoming.record = std::move(record);
  ObjectRecord* inserted = nullptr;
  while (true) {
    Slot& s = slots_[i];
    if (s.probe == 0) {
      s = std::move(incoming);
      ++size_;
      return inserted ? *inserted : s.record;
    }
    if (s.probe < incoming.probe) {
      std::swap(s, incoming);
      if (!inserted) inserted = &s.record;
    }
    i = (i + 1) & mask();
    ++incoming.probe;
  }
}

}  // namespace rodain::storage
