#include "rodain/storage/object_store.hpp"

#include <bit>
#include <cassert>
#include <mutex>
#include <utility>

#include "rodain/obs/obs.hpp"

namespace rodain::storage {

namespace {
std::size_t next_pow2(std::size_t n) {
  return std::bit_ceil(n < 16 ? std::size_t{16} : n);
}

struct StoreMetrics {
  obs::Counter& rehash_fences = obs::metrics().counter("store.rehash_fences");
};
StoreMetrics& sm() {
  static StoreMetrics m;
  return m;
}
}  // namespace

ObjectStore::ObjectStore(std::size_t expected_objects) {
  slots_.resize(next_pow2(expected_objects * 2));
}

std::size_t ObjectStore::hash_of(ObjectId id) {
  // Fibonacci/xor-fold mix; ObjectIds are often sequential.
  std::uint64_t x = id + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

Status ObjectStore::insert(ObjectId id, Value value) {
  std::unique_lock fence(table_mu_);
  sm().rehash_fences.inc();
  if (locate(id) != nullptr) {
    return Status::error(ErrorCode::kAlreadyExists, "object id taken");
  }
  ObjectRecord rec;
  rec.value = std::move(value);
  insert_internal(id, std::move(rec));
  return Status::ok();
}

ObjectRecord& ObjectStore::upsert(ObjectId id, Value value, ValidationTs wts) {
  // Fast path: overwrite the record in place under its seqlock, holding
  // only the shared table lock — structural mutators (unique holders)
  // cannot move the slot underneath us, and installers of the same oid are
  // excluded by the caller's write intent (or the commit mutex in serial
  // contexts). Only possible when neither the old nor the new payload owns
  // heap memory: freeing (or publishing) a heap buffer while a racing
  // reader may be mid-copy needs the unique fence.
  {
    std::shared_lock table(table_mu_);
    if (Slot* s = locate(id)) {
      ObjectRecord& rec = s->record;
      if (rec.value.is_inline() && value.is_inline()) {
        rec.write_begin();
        rec.value.store_inline_relaxed(value.view());
        rec.bump_wts(wts);
        if (std::atomic_ref<bool>(rec.deleted)
                .load(std::memory_order_relaxed)) {
          std::atomic_ref<bool>(rec.deleted).store(false,
                                                   std::memory_order_relaxed);
          tombstones_.fetch_sub(1, std::memory_order_relaxed);  // revived
        }
        rec.write_end();
        return rec;
      }
    }
  }
  std::unique_lock fence(table_mu_);
  sm().rehash_fences.inc();
  // Re-locate: the slot found under the shared lock is not pinned across
  // the lock change.
  if (Slot* s = locate(id)) {
    ObjectRecord& rec = s->record;
    rec.value = std::move(value);
    if (wts > rec.wts) rec.wts = wts;
    if (rec.deleted) {
      rec.deleted = false;  // revived
      tombstones_.fetch_sub(1, std::memory_order_relaxed);
    }
    return rec;
  }
  ObjectRecord rec;
  rec.value = std::move(value);
  rec.wts = wts;
  return insert_internal(id, std::move(rec));
}

ObjectRecord& ObjectStore::tombstone(ObjectId id, ValidationTs wts) {
  {
    std::shared_lock table(table_mu_);
    if (Slot* s = locate(id)) {
      ObjectRecord& rec = s->record;
      if (rec.value.is_inline()) {
        rec.write_begin();
        rec.value.store_inline_relaxed({});
        rec.bump_wts(wts);
        if (!std::atomic_ref<bool>(rec.deleted)
                 .load(std::memory_order_relaxed)) {
          std::atomic_ref<bool>(rec.deleted).store(true,
                                                   std::memory_order_relaxed);
          tombstones_.fetch_add(1, std::memory_order_relaxed);
        }
        rec.write_end();
        return rec;
      }
    }
  }
  std::unique_lock fence(table_mu_);
  sm().rehash_fences.inc();
  if (Slot* s = locate(id)) {
    ObjectRecord& rec = s->record;
    rec.value.clear();
    if (wts > rec.wts) rec.wts = wts;
    if (!rec.deleted) {
      rec.deleted = true;
      tombstones_.fetch_add(1, std::memory_order_relaxed);
    }
    return rec;
  }
  ObjectRecord rec;
  rec.wts = wts;
  rec.deleted = true;
  tombstones_.fetch_add(1, std::memory_order_relaxed);
  return insert_internal(id, std::move(rec));
}

const ObjectRecord* ObjectStore::find(ObjectId id) const {
  const Slot* s = locate(id);
  return s ? &s->record : nullptr;
}

ObjectRecord* ObjectStore::find_mutable(ObjectId id) {
  Slot* s = locate(id);
  return s ? &s->record : nullptr;
}

OptimisticRead ObjectStore::read_optimistic(ObjectId id, ObjectRecord& out,
                                            std::uint32_t& retries,
                                            std::uint32_t max_retries) const {
  std::shared_lock table(table_mu_);
  const Slot* s = locate(id);
  if (s == nullptr) {
    retries = 0;
    return OptimisticRead::kMiss;
  }
  const ObjectRecord& rec = s->record;
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (attempt > max_retries) {
      retries = attempt;
      return OptimisticRead::kContended;
    }
    const std::uint32_t s1 = rec.seq_acquire();
    if (s1 & 1u) continue;  // writer mid-update
    std::uint64_t words[Value::kInlineWords];
    std::size_t value_size = 0;
    ValidationTs rts = 0;
    ValidationTs wts = 0;
    bool deleted = false;
    bool inline_payload = rec.value.load_inline_relaxed(words, value_size);
    Value heap_copy;
    if (!inline_payload) {
      // Heap payloads only mutate under the unique table lock, which we
      // exclude by holding the shared lock — the buffer is stable even if
      // the seqlock says a (necessarily inline-path) writer is active.
      heap_copy = rec.value;
    }
    // atomic_ref<const T> arrives in C++26; const_cast for the loads.
    rts = std::atomic_ref<ValidationTs>(const_cast<ValidationTs&>(rec.rts))
              .load(std::memory_order_relaxed);
    wts = std::atomic_ref<ValidationTs>(const_cast<ValidationTs&>(rec.wts))
              .load(std::memory_order_relaxed);
    deleted = std::atomic_ref<bool>(const_cast<bool&>(rec.deleted))
                  .load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (rec.seq_relaxed() != s1) continue;  // torn — retry
    if (inline_payload) {
      out.value.assign(std::as_bytes(std::span{words}).first(value_size));
    } else {
      out.value = std::move(heap_copy);
    }
    out.rts = rts;
    out.wts = wts;
    out.deleted = deleted;
    retries = attempt;
    return OptimisticRead::kHit;
  }
}

std::optional<std::pair<ValidationTs, ValidationTs>> ObjectStore::timestamps_of(
    ObjectId id) const {
  std::shared_lock table(table_mu_);
  const Slot* s = locate(id);
  if (s == nullptr) return std::nullopt;
  const ObjectRecord& rec = s->record;
  const ValidationTs rts =
      std::atomic_ref<ValidationTs>(const_cast<ValidationTs&>(rec.rts))
          .load(std::memory_order_relaxed);
  const ValidationTs wts =
      std::atomic_ref<ValidationTs>(const_cast<ValidationTs&>(rec.wts))
          .load(std::memory_order_relaxed);
  return std::make_pair(rts, wts);
}

bool ObjectStore::bump_rts(ObjectId id, ValidationTs ts) {
  std::shared_lock table(table_mu_);
  if (Slot* s = locate(id)) {
    s->record.bump_rts(ts);
    return true;
  }
  return false;
}

bool ObjectStore::erase(ObjectId id) {
  std::unique_lock fence(table_mu_);
  sm().rehash_fences.inc();
  Slot* s = locate(id);
  if (!s) return false;
  if (s->record.deleted) tombstones_.fetch_sub(1, std::memory_order_relaxed);
  // Backward-shift deletion keeps probe sequences contiguous.
  std::size_t i = static_cast<std::size_t>(s - slots_.data());
  while (true) {
    std::size_t next = (i + 1) & mask();
    if (slots_[next].probe <= 1) break;
    slots_[i] = std::move(slots_[next]);
    --slots_[i].probe;
    i = next;
  }
  slots_[i] = Slot{};
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void ObjectStore::for_each(
    const std::function<void(ObjectId, const ObjectRecord&)>& fn) const {
  for (const Slot& s : slots_) {
    if (s.probe != 0) fn(s.id, s.record);
  }
}

void ObjectStore::clear() {
  std::unique_lock fence(table_mu_);
  sm().rehash_fences.inc();
  for (Slot& s : slots_) s = Slot{};
  size_.store(0, std::memory_order_relaxed);
  tombstones_.store(0, std::memory_order_relaxed);
}

void ObjectStore::grow() {
  // Callers already hold table_mu_ exclusively (every insert path fences).
  std::vector<Slot> old = std::move(slots_);
  slots_.clear();
  slots_.resize(old.size() * 2);
  size_.store(0, std::memory_order_relaxed);
  for (Slot& s : old) {
    if (s.probe != 0) insert_internal(s.id, std::move(s.record));
  }
}

ObjectStore::Slot* ObjectStore::locate(ObjectId id) {
  std::size_t i = hash_of(id) & mask();
  std::uint32_t probe = 1;
  while (true) {
    Slot& s = slots_[i];
    if (s.probe == 0 || s.probe < probe) return nullptr;
    if (s.id == id) return &s;
    i = (i + 1) & mask();
    ++probe;
  }
}

const ObjectStore::Slot* ObjectStore::locate(ObjectId id) const {
  return const_cast<ObjectStore*>(this)->locate(id);
}

ObjectRecord& ObjectStore::insert_internal(ObjectId id, ObjectRecord record) {
  if ((size_.load(std::memory_order_relaxed) + 1) * 10 >= slots_.size() * 9) {
    grow();  // keep load < 0.9
  }
  std::size_t i = hash_of(id) & mask();
  Slot incoming;
  incoming.id = id;
  incoming.probe = 1;
  incoming.record = std::move(record);
  ObjectRecord* inserted = nullptr;
  while (true) {
    Slot& s = slots_[i];
    if (s.probe == 0) {
      s = std::move(incoming);
      size_.fetch_add(1, std::memory_order_relaxed);
      return inserted ? *inserted : s.record;
    }
    if (s.probe < incoming.probe) {
      std::swap(s, incoming);
      if (!inserted) inserted = &s.record;
    }
    i = (i + 1) & mask();
    ++incoming.probe;
  }
}

}  // namespace rodain::storage
