#include "rodain/storage/fuzzy_checkpoint.hpp"

#include <algorithm>
#include <cstring>

namespace rodain::storage {

namespace {

constexpr std::uint8_t kKindBase = 0;
constexpr std::uint8_t kKindDelta = 1;
constexpr std::uint8_t kFlagTombstone = 0x1;
constexpr std::uint32_t kChainVersion = 1;
constexpr std::size_t kIndexScanChunk = 512;

/// Strip + verify the trailing CRC; returns the body span.
Result<std::span<const std::byte>> checked_body(
    std::span<const std::byte> data) {
  if (data.size() < 4) {
    return Status::error(ErrorCode::kCorruption, "checkpoint too short");
  }
  const auto body = data.subspan(0, data.size() - 4);
  ByteReader crc_reader(data.subspan(data.size() - 4));
  std::uint32_t expect = 0;
  if (auto s = crc_reader.get_u32(expect); !s) return s;
  if (crc32c(body) != expect) {
    return Status::error(ErrorCode::kCorruption, "checkpoint CRC mismatch");
  }
  return body;
}

/// Parse the fixed v3 header; leaves `r` positioned at the record count.
Status parse_fuzzy_header(ByteReader& r, FuzzyMeta& meta) {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint8_t kind = 0;
  if (auto s = r.get_u64(magic); !s) return s;
  if (magic != kCheckpointMagic) {
    return Status::error(ErrorCode::kCorruption, "bad checkpoint magic");
  }
  if (auto s = r.get_u32(version); !s) return s;
  if (version != kFuzzyVersion) {
    return Status::error(ErrorCode::kCorruption,
                         "unsupported fuzzy checkpoint version");
  }
  if (auto s = r.get_u8(kind); !s) return s;
  if (kind > kKindDelta) {
    return Status::error(ErrorCode::kCorruption, "bad fuzzy checkpoint kind");
  }
  meta.delta = kind == kKindDelta;
  if (auto s = r.get_u64(meta.boundary); !s) return s;
  if (auto s = r.get_u64(meta.capture_epoch); !s) return s;
  if (auto s = r.get_u64(meta.floor_epoch); !s) return s;
  return Status::ok();
}

Status apply_records(ByteReader& r, std::uint32_t count, ObjectStore& store) {
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    std::uint64_t wts = 0;
    std::uint8_t flags = 0;
    std::uint64_t len = 0;
    std::span<const std::byte> value;
    if (auto s = r.get_u64(id); !s) return s;
    if (auto s = r.get_u64(wts); !s) return s;
    if (auto s = r.get_u8(flags); !s) return s;
    if (auto s = r.get_varint(len); !s) return s;
    if (auto s = r.get_raw(static_cast<std::size_t>(len), value); !s) return s;
    if (flags & kFlagTombstone) {
      store.tombstone(id, wts);
    } else {
      store.upsert(id, Value{value}, wts);
    }
  }
  return Status::ok();
}

Status apply_index_ops(ByteReader& r, std::uint32_t count, BPlusTree* index) {
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint8_t kind = 0;
    std::span<const std::byte> raw;
    std::uint64_t oid = 0;
    if (auto s = r.get_u8(kind); !s) return s;
    if (kind > static_cast<std::uint8_t>(IndexOp::Kind::kErase)) {
      return Status::error(ErrorCode::kCorruption, "bad index op kind");
    }
    IndexKey key;
    if (auto s = r.get_raw(key.bytes.size(), raw); !s) return s;
    std::memcpy(key.bytes.data(), raw.data(), raw.size());
    if (auto s = r.get_varint(oid); !s) return s;
    if (!index) continue;
    if (kind == static_cast<std::uint8_t>(IndexOp::Kind::kUpsert)) {
      if (!index->insert(key, oid)) index->update(key, oid);
    } else {
      index->erase(key);  // idempotent: the key may already be gone
    }
  }
  return Status::ok();
}

void put_fuzzy_header(ByteWriter& out, std::uint8_t kind,
                      ValidationTs boundary, std::uint64_t capture_epoch,
                      std::uint64_t floor_epoch) {
  out.put_u64(kCheckpointMagic);
  out.put_u32(kFuzzyVersion);
  out.put_u8(kind);
  out.put_u64(boundary);
  out.put_u64(capture_epoch);
  out.put_u64(floor_epoch);
}

}  // namespace

FuzzyEncodeStats encode_fuzzy_base(ObjectStore& store, const BPlusTree& index,
                                   ValidationTs boundary, ByteWriter& out) {
  FuzzyEncodeStats stats;
  const std::size_t body_start = out.size();
  put_fuzzy_header(out, kKindBase, boundary, store.snapshot_epoch(), 0);
  const std::size_t record_count_at = out.size();
  out.put_u32(0);
  std::uint32_t records = 0;
  stats.scan = store.snapshot_scan(
      0, [&](ObjectId id, const Value& value, ValidationTs wts, bool deleted) {
        if (deleted) return;  // bases compact tombstones away
        out.put_u64(id);
        out.put_u64(wts);
        out.put_u8(0);
        out.put_bytes(value.view());
        ++records;
      });
  out.patch_u32(record_count_at, records);

  // Full index dump as upsert ops: entries inserted or erased mid-scan are
  // reconciled by the change journal (next delta) and log replay past the
  // boundary — both idempotent.
  const std::size_t op_count_at = out.size();
  out.put_u32(0);
  std::uint32_t ops = 0;
  index.chunked_scan(kIndexScanChunk, [&](const IndexKey& key, ObjectId oid) {
    out.put_u8(static_cast<std::uint8_t>(IndexOp::Kind::kUpsert));
    out.put_raw(std::as_bytes(std::span{key.bytes}));
    out.put_varint(oid);
    ++ops;
  });
  out.patch_u32(op_count_at, ops);
  out.put_u32(crc32c(out.view().subspan(body_start)));
  stats.records = records;
  stats.index_ops = ops;
  stats.bytes = out.size() - body_start;
  return stats;
}

FuzzyEncodeStats encode_fuzzy_delta(ObjectStore& store,
                                    std::span<const IndexOp> index_ops,
                                    ValidationTs boundary,
                                    std::uint64_t floor_epoch,
                                    ByteWriter& out) {
  FuzzyEncodeStats stats;
  const std::size_t body_start = out.size();
  put_fuzzy_header(out, kKindDelta, boundary, store.snapshot_epoch(),
                   floor_epoch);
  const std::size_t record_count_at = out.size();
  out.put_u32(0);
  std::uint32_t records = 0;
  stats.scan = store.snapshot_scan(
      floor_epoch,
      [&](ObjectId id, const Value& value, ValidationTs wts, bool deleted) {
        out.put_u64(id);
        out.put_u64(wts);
        out.put_u8(deleted ? kFlagTombstone : 0);
        out.put_bytes(value.view());
        ++records;
      });
  out.patch_u32(record_count_at, records);

  out.put_u32(static_cast<std::uint32_t>(index_ops.size()));
  for (const IndexOp& op : index_ops) {
    out.put_u8(static_cast<std::uint8_t>(op.kind));
    out.put_raw(std::as_bytes(std::span{op.key.bytes}));
    out.put_varint(op.oid);
  }
  out.put_u32(crc32c(out.view().subspan(body_start)));
  stats.records = records;
  stats.index_ops = index_ops.size();
  stats.bytes = out.size() - body_start;
  return stats;
}

Result<FuzzyMeta> peek_fuzzy(std::span<const std::byte> data) {
  auto body = checked_body(data);
  if (!body.is_ok()) return body.status();
  ByteReader r(body.value());
  FuzzyMeta meta;
  if (auto s = parse_fuzzy_header(r, meta); !s) return s;
  std::uint32_t record_count = 0;
  if (auto s = r.get_u32(record_count); !s) return s;
  meta.record_count = record_count;
  for (std::uint32_t i = 0; i < record_count; ++i) {
    std::uint64_t skip_u64 = 0;
    std::uint8_t skip_u8 = 0;
    std::uint64_t len = 0;
    std::span<const std::byte> raw;
    if (auto s = r.get_u64(skip_u64); !s) return s;
    if (auto s = r.get_u64(skip_u64); !s) return s;
    if (auto s = r.get_u8(skip_u8); !s) return s;
    if (auto s = r.get_varint(len); !s) return s;
    if (auto s = r.get_raw(static_cast<std::size_t>(len), raw); !s) return s;
  }
  std::uint32_t op_count = 0;
  if (auto s = r.get_u32(op_count); !s) return s;
  meta.index_op_count = op_count;
  return meta;
}

namespace {

Result<CheckpointMeta> decode_fuzzy_body(std::span<const std::byte> data,
                                         ObjectStore& store, BPlusTree* index,
                                         bool expect_delta) {
  auto body = checked_body(data);
  if (!body.is_ok()) return body.status();
  ByteReader r(body.value());
  FuzzyMeta meta;
  if (auto s = parse_fuzzy_header(r, meta); !s) return s;
  if (meta.delta != expect_delta) {
    return Status::error(ErrorCode::kCorruption,
                         expect_delta ? "expected delta, found base"
                                      : "expected base, found delta");
  }
  if (!expect_delta) {
    store.clear();
    if (index) *index = BPlusTree{};
  }
  std::uint32_t record_count = 0;
  if (auto s = r.get_u32(record_count); !s) return s;
  if (auto s = apply_records(r, record_count, store); !s) return s;
  std::uint32_t op_count = 0;
  if (auto s = r.get_u32(op_count); !s) return s;
  if (auto s = apply_index_ops(r, op_count, index); !s) return s;
  if (!r.at_end()) {
    return Status::error(ErrorCode::kCorruption, "trailing checkpoint bytes");
  }
  CheckpointMeta out;
  out.last_applied = meta.boundary;
  out.object_count = record_count;
  return out;
}

/// A chain's first part may be a v3 base or (defensively) a legacy full
/// checkpoint; dispatch on the version field.
Result<CheckpointMeta> decode_part_base(std::span<const std::byte> part,
                                        ObjectStore& store, BPlusTree* index) {
  ByteReader r(part);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  if (r.get_u64(magic) && r.get_u32(version) && magic == kCheckpointMagic &&
      version == kFuzzyVersion) {
    return decode_fuzzy_body(part, store, index, /*expect_delta=*/false);
  }
  return decode_checkpoint(part, store, index);
}

}  // namespace

Result<CheckpointMeta> decode_fuzzy_base(std::span<const std::byte> data,
                                         ObjectStore& store,
                                         BPlusTree* index) {
  return decode_fuzzy_body(data, store, index, /*expect_delta=*/false);
}

Result<CheckpointMeta> apply_fuzzy_delta(std::span<const std::byte> data,
                                         ObjectStore& store,
                                         BPlusTree* index) {
  return decode_fuzzy_body(data, store, index, /*expect_delta=*/true);
}

void encode_chain(std::span<const std::vector<std::byte>> parts,
                  ByteWriter& out) {
  out.put_u64(kChainMagic);
  out.put_u32(kChainVersion);
  out.put_u32(static_cast<std::uint32_t>(parts.size()));
  for (const auto& part : parts) {
    out.put_u64(part.size());
    out.put_raw(part);
  }
}

Result<CheckpointMeta> decode_checkpoint_any(std::span<const std::byte> data,
                                             ObjectStore& store,
                                             BPlusTree* index) {
  ByteReader probe(data);
  std::uint64_t magic = 0;
  if (data.size() >= 8) (void)probe.get_u64(magic);

  if (magic == kChainMagic) {
    std::uint32_t version = 0;
    std::uint32_t count = 0;
    if (auto s = probe.get_u32(version); !s) return s;
    if (version != kChainVersion) {
      return Status::error(ErrorCode::kCorruption, "unsupported chain version");
    }
    if (auto s = probe.get_u32(count); !s) return s;
    if (count == 0) {
      return Status::error(ErrorCode::kCorruption, "empty checkpoint chain");
    }
    CheckpointMeta meta;
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint64_t len = 0;
      std::span<const std::byte> part;
      if (auto s = probe.get_u64(len); !s) return s;
      if (auto s = probe.get_raw(static_cast<std::size_t>(len), part); !s) {
        return s;
      }
      auto m = i == 0 ? decode_part_base(part, store, index)
                      : apply_fuzzy_delta(part, store, index);
      if (!m.is_ok()) return m.status();
      meta.last_applied = m.value().last_applied;
    }
    if (!probe.at_end()) {
      return Status::error(ErrorCode::kCorruption, "trailing chain bytes");
    }
    meta.object_count = store.live_size();
    return meta;
  }

  if (magic == kCheckpointMagic) {
    std::uint32_t version = 0;
    if (probe.get_u32(version) && version == kFuzzyVersion) {
      return decode_fuzzy_base(data, store, index);
    }
  }
  return decode_checkpoint(data, store, index);
}

namespace {

Result<CheckpointMeta> load_chain(const std::string& manifest_path,
                                  const CkptManifest& m, ObjectStore& store,
                                  BPlusTree* index) {
  if (m.entries.empty()) {
    return Status::error(ErrorCode::kCorruption, "empty checkpoint chain");
  }
  CheckpointMeta meta;
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    auto buf = read_file_bytes(sibling_path(manifest_path, m.entries[i].file));
    if (!buf.is_ok()) return buf.status();
    auto r = i == 0 ? decode_part_base(buf.value(), store, index)
                    : apply_fuzzy_delta(buf.value(), store, index);
    if (!r.is_ok()) return r.status();
    meta.last_applied = r.value().last_applied;
  }
  meta.object_count = store.live_size();
  return meta;
}

}  // namespace

Result<CheckpointMeta> load_checkpoint_artifacts(
    const std::string& checkpoint_path, ObjectStore& store, BPlusTree* index) {
  const std::string manifest_path = manifest_path_for(checkpoint_path);
  auto manifest = read_manifest_file(manifest_path);
  auto legacy = read_file_bytes(checkpoint_path);

  std::uint64_t legacy_boundary = 0;
  bool legacy_ok = false;
  if (legacy.is_ok()) {
    if (auto pm = peek_checkpoint(legacy.value()); pm.is_ok()) {
      legacy_ok = true;
      legacy_boundary = pm.value().last_applied;
    }
  }

  // Both sources can exist (a mirror-era legacy file next to a stale fuzzy
  // manifest, or vice versa); the freshest — highest covered boundary — wins,
  // and a corrupt winner falls back to the other.
  const bool chain_first =
      manifest.is_ok() &&
      (!legacy_ok || manifest.value().covered_boundary() >= legacy_boundary);

  Status last_err = Status::ok();
  bool tried = false;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool use_chain = attempt == 0 ? chain_first : !chain_first;
    if (use_chain) {
      if (!manifest.is_ok()) continue;
      tried = true;
      auto r = load_chain(manifest_path, manifest.value(), store, index);
      if (r.is_ok()) return r;
      last_err = r.status();
    } else {
      if (!legacy.is_ok()) continue;
      tried = true;
      auto r = decode_checkpoint_any(legacy.value(), store, index);
      if (r.is_ok()) return r;
      last_err = r.status();
    }
  }
  if (tried) return last_err;
  if (manifest.status().code() == ErrorCode::kCorruption) {
    return manifest.status();
  }
  // Neither source exists (or both were unreadable as files).
  return legacy.is_ok() ? manifest.status() : legacy.status();
}

Result<CheckpointBytes> read_artifact_chain_bytes(
    const std::string& checkpoint_path) {
  const std::string manifest_path = manifest_path_for(checkpoint_path);
  auto manifest = read_manifest_file(manifest_path);
  auto legacy = read_checkpoint_bytes(checkpoint_path);

  const std::uint64_t legacy_boundary =
      legacy.is_ok() ? legacy.value().meta.last_applied : 0;
  const bool chain_first =
      manifest.is_ok() &&
      (!legacy.is_ok() || manifest.value().covered_boundary() >= legacy_boundary);

  if (chain_first) {
    const CkptManifest& m = manifest.value();
    std::vector<std::vector<std::byte>> parts;
    parts.reserve(m.entries.size());
    CheckpointBytes out;
    bool complete = !m.entries.empty();
    for (const ManifestEntry& e : m.entries) {
      auto buf = read_file_bytes(sibling_path(manifest_path, e.file));
      if (!buf.is_ok()) {
        complete = false;
        break;
      }
      if (auto pm = peek_fuzzy(buf.value()); pm.is_ok()) {
        out.meta.object_count += pm.value().record_count;
      }
      parts.push_back(std::move(buf).value());
    }
    if (complete) {
      ByteWriter w;
      encode_chain(parts, w);
      out.bytes = w.take();
      out.meta.last_applied = m.covered_boundary();
      return out;
    }
  }
  return legacy;
}

}  // namespace rodain::storage
