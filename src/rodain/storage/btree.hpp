// B+-tree secondary index.
//
// The number-translation workload looks up subscriber records by dialled
// digit string; the tree maps fixed-width 16-byte keys (zero-padded numbers)
// to ObjectIds, with linked leaves for range scans (prefix enumeration of a
// number block). Classic order-B design: split on overflow, borrow/merge on
// underflow.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rodain/common/status.hpp"
#include "rodain/common/types.hpp"

namespace rodain::storage {

/// Fixed-width index key: lexicographically compared 16 bytes.
struct IndexKey {
  std::array<std::uint8_t, 16> bytes{};

  [[nodiscard]] static IndexKey from_string(std::string_view s);
  [[nodiscard]] static IndexKey from_u64(std::uint64_t v);  ///< big-endian
  [[nodiscard]] static IndexKey min() { return IndexKey{}; }
  [[nodiscard]] static IndexKey max();

  [[nodiscard]] std::string to_string() const;  ///< printable prefix

  auto operator<=>(const IndexKey&) const = default;
};

/// One index mutation, as recorded by the change journal and replayed from
/// checkpoint delta files (DESIGN.md §15). kUpsert covers both insert and
/// value update (applied as insert-or-update); kErase removes the key if
/// present. Both are idempotent under re-application.
struct IndexOp {
  enum class Kind : std::uint8_t { kUpsert = 0, kErase = 1 };
  Kind kind{Kind::kUpsert};
  IndexKey key{};
  ObjectId oid{kInvalidObject};
};

class BPlusTree {
 public:
  static constexpr std::size_t kOrder = 32;  // max keys per node

  BPlusTree();
  ~BPlusTree();
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&& o) noexcept;
  BPlusTree& operator=(BPlusTree&& o) noexcept;

  /// Insert; returns false (tree unchanged) when the key already exists.
  bool insert(const IndexKey& key, ObjectId value);

  /// Replace the value of an existing key; false if absent.
  bool update(const IndexKey& key, ObjectId value);

  [[nodiscard]] std::optional<ObjectId> find(const IndexKey& key) const;

  bool erase(const IndexKey& key);

  /// Visit entries with lo <= key <= hi in key order; stop early when the
  /// visitor returns false.
  void range_scan(const IndexKey& lo, const IndexKey& hi,
                  const std::function<bool(const IndexKey&, ObjectId)>& fn) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t height() const;

  // Readers (find/range_scan/height/validate) take mu_ shared; structural
  // mutators (insert/update/erase) take it unique. Mutators are already
  // serialized by the engine's commit mutex, so the unique acquisition only
  // fences optimistic read-phase lookups during splits/merges (DESIGN.md
  // §11); readers never block each other.

  /// Check every structural invariant (key order, fill factors, leaf links,
  /// separator correctness). Test/debug aid; O(n).
  [[nodiscard]] Status validate() const;

  // ---- change journal (fuzzy checkpoint deltas, DESIGN.md §15) ----------
  /// Enable (clear + start recording) or disable the journal. While enabled,
  /// every successful insert/update/erase appends an op under the unique
  /// lock it already holds.
  void set_journal(bool enabled);
  /// Take the ops recorded since the last cut; the journal stays enabled.
  [[nodiscard]] std::vector<IndexOp> cut_journal();
  /// Put back ops from a failed checkpoint so the next cut re-covers them
  /// (prepended: they happened before anything recorded since the cut).
  void restore_journal(std::vector<IndexOp> ops);
  [[nodiscard]] bool journal_enabled() const;

  /// Resumable full scan in key order: emits every stable entry in chunks of
  /// `chunk`, dropping and re-taking the shared lock between chunks so
  /// mutators wait at most one chunk. Entries inserted or erased mid-scan may
  /// or may not be seen — callers pair the scan with the change journal
  /// (fuzzy base encode) or exclude writers.
  void chunked_scan(std::size_t chunk,
                    const std::function<void(const IndexKey&, ObjectId)>& fn) const;

 private:
  struct Node;
  struct InsertResult;

  [[nodiscard]] std::size_t height_unlocked() const;
  Node* leaf_for(const IndexKey& key) const;
  InsertResult insert_rec(Node* n, const IndexKey& key, ObjectId value);
  bool erase_rec(Node* n, const IndexKey& key);
  void rebalance_child(Node* parent, std::size_t idx);
  static void destroy(Node* n);
  Status validate_rec(const Node* n, const IndexKey* lo, const IndexKey* hi,
                      std::size_t depth, std::size_t leaf_depth) const;

  Node* root_{nullptr};
  std::size_t size_{0};
  bool journal_enabled_{false};
  std::vector<IndexOp> journal_;
  mutable std::shared_mutex mu_;
};

}  // namespace rodain::storage
