// Whole-database checkpoints.
//
// Two consumers: (1) the disk backup a lone node recovers from ("recover
// from the backup on the disk", paper §4), and (2) snapshot shipping when a
// recovered node rejoins as Mirror and needs the current database copy
// before log catch-up. Both use the same CRC-protected encoding; only the
// sink differs (file vs. network chunks).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rodain/common/serialization.hpp"
#include "rodain/common/status.hpp"
#include "rodain/common/types.hpp"
#include "rodain/storage/btree.hpp"
#include "rodain/storage/object_store.hpp"

namespace rodain::storage {

/// Shared on-disk magic for every checkpoint artifact (legacy full files and
/// fuzzy base/delta files alike); the version field distinguishes layouts.
inline constexpr std::uint64_t kCheckpointMagic = 0x31544b4344'4f52ULL;

struct CheckpointMeta {
  ValidationTs last_applied{0};  ///< every txn with ts <= this is included
  std::uint64_t object_count{0};
};

/// Serialize the full store, and optionally the secondary index (so a
/// cold start or a joining mirror rebuilds both). `last_applied` is the
/// validation-timestamp high-water mark the snapshot is consistent with.
void encode_checkpoint(const ObjectStore& store, ValidationTs last_applied,
                       ByteWriter& out, const BPlusTree* index = nullptr);

/// Rebuild `store` (cleared first) — and `index`, when provided and the
/// checkpoint carries an index section — from an encoded checkpoint.
Result<CheckpointMeta> decode_checkpoint(std::span<const std::byte> data,
                                         ObjectStore& store,
                                         BPlusTree* index = nullptr);

/// Durably write `bytes` to `path` via write-to-temp + fsync + rename +
/// parent-dir fsync. The temp file (`path + ".tmp"`) is unlinked on every
/// error path, including a failed rename.
Status write_file_atomic(const std::string& path,
                         std::span<const std::byte> bytes);

/// Read a whole file. kNotFound for a missing or zero-length file (the
/// latter is what a crash between create and first write leaves behind).
Result<std::vector<std::byte>> read_file_bytes(const std::string& path);

/// File convenience wrappers (atomic via write-to-temp + rename).
Status write_checkpoint_file(const ObjectStore& store, ValidationTs last_applied,
                             const std::string& path,
                             const BPlusTree* index = nullptr);
Result<CheckpointMeta> read_checkpoint_file(const std::string& path,
                                            ObjectStore& store,
                                            BPlusTree* index = nullptr);

/// Validate (CRC + header) and parse only the metadata of an encoded
/// checkpoint — no store rebuild. Cheap enough for the join-serving path.
Result<CheckpointMeta> peek_checkpoint(std::span<const std::byte> data);

/// The raw on-disk checkpoint plus its peeked metadata, for serving a join
/// directly from the artifact instead of re-encoding the live store.
/// kNotFound for a missing or zero-length file (same as read_checkpoint_file).
struct CheckpointBytes {
  std::vector<std::byte> bytes;
  CheckpointMeta meta;
};
Result<CheckpointBytes> read_checkpoint_bytes(const std::string& path);

}  // namespace rodain::storage
