// The embedded public API: a single-process RODAIN database.
//
// Wraps the real-time runtime in the smallest possible surface for
// applications that want a fast, predictable in-memory store with redo
// logging — the quickstart entry point. Pair two Database instances over
// TCP with `rodain::rt::Node` directly (see examples/failover_demo.cpp)
// when you need the hot-standby configuration.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "rodain/rt/node.hpp"
#include "rodain/workload/number_translation.hpp"

namespace rodain::db {

struct DatabaseOptions {
  /// Redo log file; empty disables durable logging (pure main-memory mode).
  std::string log_path{};
  bool fsync_log{false};
  /// Concurrency-control protocol (the paper's default is OCC-DATI).
  cc::Protocol protocol{cc::Protocol::kOccDati};
  /// Cap on concurrently active transactions (paper: 50).
  std::size_t max_active_txns{50};
  std::size_t worker_threads{1};
  std::size_t expected_objects{1024};
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ---- schema / loading (before or between transactions) ---------------
  /// Insert an object directly (bulk load; not logged).
  Status put_raw(ObjectId oid, storage::Value value);
  /// Register a secondary-index entry for an object.
  Status index_raw(const storage::IndexKey& key, ObjectId oid);

  // ---- transactions -----------------------------------------------------
  /// Run a transaction program to completion (blocking).
  rt::CommitInfo execute(txn::TxnProgram program);
  /// Committed read of one object. Served by a lock-free seqlock snapshot
  /// (rt::Node::read_committed); falls back to a transactional read when the
  /// snapshot is contended away or a role flip races it, so the result is
  /// always committed state (DESIGN.md §11).
  [[nodiscard]] Result<storage::Value> get(ObjectId oid);
  /// Committed read through the secondary index.
  [[nodiscard]] Result<storage::Value> get_by_key(const storage::IndexKey& key);
  /// Convenience: transactional overwrite of one object.
  rt::CommitInfo put(ObjectId oid, storage::Value value);
  /// Convenience: transactional 64-bit add at a byte offset.
  rt::CommitInfo add_to_field(ObjectId oid, std::uint32_t offset,
                              std::uint64_t delta);

  // ---- introspection -----------------------------------------------------
  [[nodiscard]] TxnCounters counters() const;
  [[nodiscard]] LatencyHistogram commit_latency() const;
  [[nodiscard]] rt::Node& node() { return *node_; }

 private:
  std::unique_ptr<rt::Node> node_;
};

}  // namespace rodain::db
