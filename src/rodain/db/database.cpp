#include "rodain/db/database.hpp"

namespace rodain::db {

Database::Database(DatabaseOptions options) {
  rt::NodeConfig config;
  config.engine.protocol = options.protocol;
  config.overload.max_active = options.max_active_txns;
  config.worker_threads = options.worker_threads;
  config.log_path = options.log_path;
  config.fsync_log = options.fsync_log;
  config.store_capacity_hint = options.expected_objects;
  node_ = std::make_unique<rt::Node>(config, "embedded");
  node_->start_primary(options.log_path.empty() ? LogMode::kOff
                                                : LogMode::kDirectDisk);
}

Database::~Database() = default;

Status Database::put_raw(ObjectId oid, storage::Value value) {
  node_->store().upsert(oid, std::move(value), 0);
  return Status::ok();
}

Status Database::index_raw(const storage::IndexKey& key, ObjectId oid) {
  if (!node_->index().insert(key, oid)) {
    return Status::error(ErrorCode::kAlreadyExists, "index key taken");
  }
  return Status::ok();
}

rt::CommitInfo Database::execute(txn::TxnProgram program) {
  return node_->execute(std::move(program));
}

Result<storage::Value> Database::get(ObjectId oid) {
  // Fast path: a lock-free seqlock snapshot of the committed record — no
  // transaction, no commit mutex. Only retry exhaustion or a role flip
  // (kUnavailable) falls back to the fully transactional read; kNotFound is
  // a committed answer and is returned as-is.
  Result<storage::Value> fast = node_->read_committed(oid);
  if (fast.is_ok() || fast.status().code() == ErrorCode::kNotFound) {
    return fast;
  }
  return node_->get(oid);
}

Result<storage::Value> Database::get_by_key(const storage::IndexKey& key) {
  const auto oid = node_->index().find(key);
  if (!oid) return Status::error(ErrorCode::kNotFound, "key not indexed");
  return get(*oid);
}

rt::CommitInfo Database::put(ObjectId oid, storage::Value value) {
  txn::TxnProgram program;
  program.set_value(oid, std::move(value));
  program.relative_deadline = Duration::seconds(5);
  return execute(std::move(program));
}

rt::CommitInfo Database::add_to_field(ObjectId oid, std::uint32_t offset,
                                      std::uint64_t delta) {
  txn::TxnProgram program;
  program.add_to_field(oid, offset, delta);
  program.relative_deadline = Duration::seconds(5);
  return execute(std::move(program));
}

TxnCounters Database::counters() const { return node_->counters(); }

LatencyHistogram Database::commit_latency() const {
  return node_->commit_latency();
}

}  // namespace rodain::db
