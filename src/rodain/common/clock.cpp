#include "rodain/common/clock.hpp"

#include <chrono>

namespace rodain {

namespace {
std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RealClock::RealClock() : origin_ns_(steady_ns()) {}

TimePoint RealClock::now() const {
  return TimePoint{(steady_ns() - origin_ns_) / 1000};
}

}  // namespace rodain
