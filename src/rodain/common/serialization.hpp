// Byte-level serialization for log records, network frames and checkpoints.
//
// Fixed little-endian encoding; readers are bounds-checked and never throw —
// a truncated or corrupt buffer turns into a failed Status so that torn log
// tails and bad frames are handled as data, not as crashes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rodain/common/status.hpp"

namespace rodain {

/// Append-only binary encoder.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }

  /// LEB128 variable-length unsigned integer.
  void put_varint(std::uint64_t v);

  /// Length-prefixed (varint) byte string.
  void put_bytes(std::span<const std::byte> data);
  void put_string(std::string_view s);

  /// Raw bytes without a length prefix.
  void put_raw(std::span<const std::byte> data);

  /// Patch a previously written u32 at an absolute offset (frame lengths).
  void patch_u32(std::size_t offset, std::uint32_t v);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::byte> view() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  void clear() { buf_.clear(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }

  std::vector<std::byte> buf_;
};

/// Bounds-checked binary decoder over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] Status get_u8(std::uint8_t& out);
  [[nodiscard]] Status get_u16(std::uint16_t& out);
  [[nodiscard]] Status get_u32(std::uint32_t& out);
  [[nodiscard]] Status get_u64(std::uint64_t& out);
  [[nodiscard]] Status get_i64(std::int64_t& out);
  [[nodiscard]] Status get_f64(double& out);
  [[nodiscard]] Status get_varint(std::uint64_t& out);
  [[nodiscard]] Status get_bytes(std::vector<std::byte>& out);
  [[nodiscard]] Status get_string(std::string& out);
  /// Borrow `n` raw bytes without copying.
  [[nodiscard]] Status get_raw(std::size_t n, std::span<const std::byte>& out);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Status get_le(T& out) {
    if (remaining() < sizeof(T)) {
      return Status::error(ErrorCode::kCorruption, "truncated buffer");
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    out = v;
    pos_ += sizeof(T);
    return Status::ok();
  }

  std::span<const std::byte> data_;
  std::size_t pos_{0};
};

/// CRC-32C (Castagnoli), table-driven. Used to detect torn/corrupt log
/// records and mangled network frames.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data,
                                   std::uint32_t seed = 0);

}  // namespace rodain
