#include "rodain/common/rng.hpp"

#include <cassert>
#include <cmath>

namespace rodain {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (xoshiro fixed point).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::uint64_t Rng::next_zipf(std::uint64_t n, double theta) {
  assert(n > 0);
  if (theta <= 0.0) return next_below(n);
  // Rejection-inversion would be overkill for our workload sizes; use the
  // classical inverse-CDF approximation over harmonic sums cached per call
  // is too slow, so use the standard "quick zipf" (Gray et al.).
  const double alpha = 1.0 / (1.0 - theta);
  const double zetan = [&] {
    double z = 0;
    for (std::uint64_t i = 1; i <= (n < 10000 ? n : 10000); ++i)
      z += 1.0 / std::pow(static_cast<double>(i), theta);
    if (n > 10000) {
      // Integral tail approximation.
      z += (std::pow(static_cast<double>(n), 1 - theta) - std::pow(10000.0, 1 - theta)) /
           (1 - theta);
    }
    return z;
  }();
  const double eta =
      (1 - std::pow(2.0 / static_cast<double>(n), 1 - theta)) / (1 - std::pow(0.5, theta) * 2 / zetan);
  const double u = next_double();
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  return rank >= n ? n - 1 : rank;
}

Rng Rng::split() {
  return Rng{next_u64() ^ 0xd2b74407b1ce6e93ULL};
}

}  // namespace rodain
