// Streaming statistics used by the experiment harness and node telemetry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rodain/common/time.hpp"

namespace rodain {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_{0};
  double mean_{0};
  double m2_{0};
  double min_{0};
  double max_{0};
};

/// Log-scaled latency histogram (microsecond domain, ~4% resolution).
/// Bounded memory, mergeable, exact count; quantiles are bucket-interpolated.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void add(Duration d);
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] Duration quantile(double q) const;  ///< q in [0,1]
  [[nodiscard]] Duration mean() const;
  [[nodiscard]] Duration max_value() const { return max_; }

  [[nodiscard]] std::string summary() const;  ///< "p50=… p95=… p99=… max=…"

 private:
  static std::size_t bucket_for(std::int64_t us);
  static std::int64_t bucket_lower(std::size_t b);

  std::vector<std::uint64_t> buckets_;
  std::size_t count_{0};
  double sum_us_{0};
  Duration max_{Duration::zero()};
};

/// Per-session transaction accounting: the quantities the paper reports.
struct TxnCounters {
  std::uint64_t submitted{0};
  std::uint64_t committed{0};
  std::uint64_t missed_deadline{0};
  std::uint64_t overload_rejected{0};
  std::uint64_t conflict_aborted{0};
  std::uint64_t system_aborted{0};
  std::uint64_t restarts{0};  ///< CC-induced restarts (txn may still commit)

  void merge(const TxnCounters& o);

  /// The paper's "transaction miss ratio": fraction of submitted
  /// transactions that did not commit (any abort reason).
  [[nodiscard]] double miss_ratio() const;
  [[nodiscard]] std::uint64_t missed_total() const {
    return missed_deadline + overload_rejected + conflict_aborted + system_aborted;
  }
};

}  // namespace rodain
