// Clock abstraction: the engine asks "what time is it" through this
// interface so the simulator can supply virtual time and the real-time
// runtime a monotonic clock.
#pragma once

#include "rodain/common/time.hpp"

namespace rodain {

class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimePoint now() const = 0;
};

/// Monotonic wall-clock (std::chrono::steady_clock), origin at construction.
class RealClock final : public Clock {
 public:
  RealClock();
  [[nodiscard]] TimePoint now() const override;

 private:
  std::int64_t origin_ns_;
};

/// Manually advanced clock, useful in unit tests of time-dependent logic.
class ManualClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const override { return now_; }
  void advance(Duration d) { now_ += d; }
  void set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_{TimePoint::origin()};
};

}  // namespace rodain
