#include "rodain/common/serialization.hpp"

#include <array>

namespace rodain {

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_bytes(std::span<const std::byte> data) {
  put_varint(data.size());
  put_raw(data);
}

void ByteWriter::put_string(std::string_view s) {
  put_bytes(std::as_bytes(std::span{s.data(), s.size()}));
}

void ByteWriter::put_raw(std::span<const std::byte> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) {
    buf_.at(offset + i) = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

Status ByteReader::get_u8(std::uint8_t& out) { return get_le(out); }
Status ByteReader::get_u16(std::uint16_t& out) { return get_le(out); }
Status ByteReader::get_u32(std::uint32_t& out) { return get_le(out); }
Status ByteReader::get_u64(std::uint64_t& out) { return get_le(out); }

Status ByteReader::get_i64(std::int64_t& out) {
  std::uint64_t v;
  if (auto s = get_le(v); !s) return s;
  out = static_cast<std::int64_t>(v);
  return Status::ok();
}

Status ByteReader::get_f64(double& out) {
  std::uint64_t bits;
  if (auto s = get_le(bits); !s) return s;
  std::memcpy(&out, &bits, sizeof out);
  return Status::ok();
}

Status ByteReader::get_varint(std::uint64_t& out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    std::uint8_t b;
    if (auto s = get_u8(b); !s) return s;
    if (shift >= 63 && (b & 0x7e) != 0) {
      return Status::error(ErrorCode::kCorruption, "varint overflow");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  out = v;
  return Status::ok();
}

Status ByteReader::get_bytes(std::vector<std::byte>& out) {
  std::uint64_t n;
  if (auto s = get_varint(n); !s) return s;
  std::span<const std::byte> raw;
  if (auto s = get_raw(n, raw); !s) return s;
  out.assign(raw.begin(), raw.end());
  return Status::ok();
}

Status ByteReader::get_string(std::string& out) {
  std::uint64_t n;
  if (auto s = get_varint(n); !s) return s;
  std::span<const std::byte> raw;
  if (auto s = get_raw(n, raw); !s) return s;
  out.assign(reinterpret_cast<const char*>(raw.data()), raw.size());
  return Status::ok();
}

Status ByteReader::get_raw(std::size_t n, std::span<const std::byte>& out) {
  if (remaining() < n) {
    return Status::error(ErrorCode::kCorruption, "truncated buffer");
  }
  out = data_.subspan(pos_, n);
  pos_ += n;
  return Status::ok();
}

namespace {

constexpr std::uint32_t kCrc32cPoly = 0x82f63b78u;  // reflected Castagnoli

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kCrc32cPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::byte b : data) {
    c = kCrcTable[(c ^ static_cast<std::uint8_t>(b)) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace rodain
