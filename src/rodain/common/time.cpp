#include "rodain/common/time.hpp"

#include <cstdio>

namespace rodain {

std::string to_string(Duration d) {
  char buf[48];
  if (d.us % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(d.us / 1'000'000));
  } else if (d.us % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(d.us / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(d.us));
  }
  return buf;
}

std::string to_string(TimePoint t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t+%.6fs", static_cast<double>(t.us) / 1e6);
  return buf;
}

}  // namespace rodain
