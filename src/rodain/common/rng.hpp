// Deterministic pseudo-random number generation.
//
// Every stochastic component (workload arrivals, object selection, failure
// injection) takes an explicit Rng so experiment repetitions are seeded
// deterministically and results are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace rodain {

/// xoshiro256** 1.0 seeded through SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Unbiased (Lemire rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// true with probability p.
  bool next_bool(double p);

  /// Exponential with the given mean (for Poisson inter-arrival times).
  double next_exponential(double mean);

  /// Zipf-distributed rank in [0, n) with exponent theta (hot-spot access).
  /// theta = 0 degenerates to uniform.
  std::uint64_t next_zipf(std::uint64_t n, double theta);

  /// Derive an independent child generator (stable w.r.t. the parent state
  /// at the time of the call).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Fisher-Yates shuffle.
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = rng.next_below(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace rodain
