#include "rodain/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rodain {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

namespace {
// 16 sub-buckets per power of two over [1us, ~2^40us]: 16*40 = 640 buckets.
constexpr std::size_t kSubBuckets = 16;
constexpr std::size_t kMaxExp = 40;
constexpr std::size_t kNumBuckets = kSubBuckets * kMaxExp + 1;
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

std::size_t LatencyHistogram::bucket_for(std::int64_t us) {
  if (us <= 0) return 0;
  const auto v = static_cast<std::uint64_t>(us);
  const int msb = 63 - __builtin_clzll(v);
  if (static_cast<std::size_t>(msb) >= kMaxExp) return kNumBuckets - 1;
  // Sub-bucket index from the bits just below the MSB.
  const std::uint64_t frac =
      msb >= 4 ? (v >> (msb - 4)) & 0xf : (v << (4 - msb)) & 0xf;
  return static_cast<std::size_t>(msb) * kSubBuckets + frac;
}

std::int64_t LatencyHistogram::bucket_lower(std::size_t b) {
  if (b == 0) return 0;
  const std::size_t msb = b / kSubBuckets;
  const std::size_t frac = b % kSubBuckets;
  const auto base = std::uint64_t{1} << msb;
  return static_cast<std::int64_t>(base + (base >> 4) * frac);
}

void LatencyHistogram::add(Duration d) {
  ++buckets_[bucket_for(d.us)];
  ++count_;
  sum_us_ += static_cast<double>(d.us);
  max_ = std::max(max_, d);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  max_ = std::max(max_, other.max_);
}

Duration LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return Duration::zero();
  q = std::clamp(q, 0.0, 1.0);
  // q == 1 is the exact maximum (tracked out of band, so saturated samples
  // that landed in the top bucket still report truthfully).
  if (q >= 1.0) return max_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) {
      // A bucket's lower bound can exceed the true maximum (single sample,
      // or overflow samples saturating into the top bucket): clamp.
      return std::min(Duration::micros(bucket_lower(b)), max_);
    }
  }
  return max_;
}

Duration LatencyHistogram::mean() const {
  if (count_ == 0) return Duration::zero();
  return Duration::micros(
      static_cast<std::int64_t>(sum_us_ / static_cast<double>(count_)));
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
                count_, mean().to_ms(), quantile(0.50).to_ms(),
                quantile(0.95).to_ms(), quantile(0.99).to_ms(), max_.to_ms());
  return buf;
}

void TxnCounters::merge(const TxnCounters& o) {
  submitted += o.submitted;
  committed += o.committed;
  missed_deadline += o.missed_deadline;
  overload_rejected += o.overload_rejected;
  conflict_aborted += o.conflict_aborted;
  system_aborted += o.system_aborted;
  restarts += o.restarts;
}

double TxnCounters::miss_ratio() const {
  if (submitted == 0) return 0.0;
  return static_cast<double>(missed_total()) / static_cast<double>(submitted);
}

}  // namespace rodain
