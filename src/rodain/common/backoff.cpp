#include "rodain/common/backoff.hpp"

#include <algorithm>

namespace rodain {

Backoff::Backoff(BackoffPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed),
      base_us_(static_cast<double>(policy.initial.us)) {}

Duration Backoff::next() {
  ++attempts_;
  const double max_us = static_cast<double>(policy_.max.us);
  const double base = std::min(base_us_, max_us);
  const double factor = 1.0 + policy_.jitter * (2.0 * rng_.next_double() - 1.0);
  const double jittered = std::clamp(base * factor, 1.0, max_us);
  base_us_ = std::min(base_us_ * policy_.multiplier, max_us);
  return Duration::micros(static_cast<std::int64_t>(jittered));
}

void Backoff::reset() {
  base_us_ = static_cast<double>(policy_.initial.us);
  attempts_ = 0;
}

}  // namespace rodain
