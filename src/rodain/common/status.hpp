// Lightweight Status / Result error handling (no exceptions on hot paths).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace rodain {

enum class ErrorCode : int {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kAborted,           // transaction aborted (conflict / deadline / overload)
  kDeadlineMissed,
  kOverload,
  kUnavailable,       // peer down, connection lost
  kCorruption,        // CRC mismatch, malformed record
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

[[nodiscard]] constexpr std::string_view to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kAlreadyExists: return "already-exists";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kAborted: return "aborted";
    case ErrorCode::kDeadlineMissed: return "deadline-missed";
    case ErrorCode::kOverload: return "overload";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kCorruption: return "corruption";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kOutOfRange: return "out-of-range";
    case ErrorCode::kFailedPrecondition: return "failed-precondition";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

/// Success-or-error result with an optional human-readable message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }
  [[nodiscard]] static Status error(ErrorCode code, std::string msg = {}) {
    return Status{code, std::move(msg)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string s{rodain::to_string(code_)};
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  ErrorCode code_{ErrorCode::kOk};
  std::string message_;
};

/// A value or a Status error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result from ok Status has no value");
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] T& value() & { assert(is_ok()); return *value_; }
  [[nodiscard]] const T& value() const& { assert(is_ok()); return *value_; }
  [[nodiscard]] T&& value() && { assert(is_ok()); return std::move(*value_); }
  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace rodain
