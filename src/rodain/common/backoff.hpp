// Capped exponential backoff with seeded jitter, for reconnect and retry
// loops. Deterministic: the same seed yields the same delay sequence, so
// chaos runs that exercise reconnects replay bit-for-bit.
#pragma once

#include <cstdint>

#include "rodain/common/rng.hpp"
#include "rodain/common/time.hpp"

namespace rodain {

struct BackoffPolicy {
  Duration initial{Duration::millis(10)};
  Duration max{Duration::seconds(2)};
  double multiplier{2.0};
  /// Each delay is scaled by a uniform factor in [1 - jitter, 1 + jitter].
  double jitter{0.2};
};

class Backoff {
 public:
  Backoff(BackoffPolicy policy, std::uint64_t seed);

  /// The next delay to wait; advances the exponential schedule.
  Duration next();
  /// Back to the initial delay (call on success).
  void reset();

  [[nodiscard]] std::uint32_t attempts() const { return attempts_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  double base_us_;
  std::uint32_t attempts_{0};
};

}  // namespace rodain
