// Core identifier and classification types shared by every subsystem.
#pragma once

#include <cstdint>
#include <string_view>

#include "rodain/common/time.hpp"

namespace rodain {

/// Identifies one data object in the main-memory database.
using ObjectId = std::uint64_t;
inline constexpr ObjectId kInvalidObject = ~ObjectId{0};

/// Identifies one transaction. Unique per node incarnation.
using TxnId = std::uint64_t;
inline constexpr TxnId kInvalidTxn = 0;

/// Dense validation timestamp: assigned at successful validation in a
/// strictly increasing sequence. The mirror releases transactions in this
/// order, which makes log reordering and single-pass recovery possible.
using ValidationTs = std::uint64_t;
inline constexpr ValidationTs kInvalidValidationTs = 0;

/// Log sequence number within one log stream.
using Lsn = std::uint64_t;

/// Node identifier within a RODAIN pair (or cluster).
using NodeId = std::uint32_t;

/// Transaction criticality classes, ordered by importance.
/// The paper supports firm- and soft-deadline real-time transactions plus
/// transactions with no deadline at all (served from a reserved fraction).
enum class Criticality : std::uint8_t {
  kNonRealTime = 0,  ///< no deadline; runs in the reserved fraction
  kSoft = 1,         ///< soft deadline; late completion still has value
  kFirm = 2,         ///< firm deadline; aborted the moment it expires
};

[[nodiscard]] constexpr std::string_view to_string(Criticality c) {
  switch (c) {
    case Criticality::kNonRealTime: return "non-rt";
    case Criticality::kSoft: return "soft";
    case Criticality::kFirm: return "firm";
  }
  return "?";
}

/// EDF scheduling key. Higher criticality always wins; within a class the
/// earlier (absolute) deadline wins; the sequence number breaks ties FIFO.
struct PriorityKey {
  Criticality crit{Criticality::kFirm};
  TimePoint deadline{TimePoint::max()};
  std::uint64_t seq{0};

  /// Returns true when *this* has strictly higher scheduling priority.
  [[nodiscard]] constexpr bool higher_than(const PriorityKey& o) const {
    if (crit != o.crit) return crit > o.crit;
    if (deadline != o.deadline) return deadline < o.deadline;
    return seq < o.seq;
  }
};

/// Why a transaction finished the way it did.
enum class TxnOutcome : std::uint8_t {
  kCommitted = 0,
  kMissedDeadline,     ///< firm deadline expired before commit
  kOverloadRejected,   ///< shed by the overload manager at admission
  kConflictAborted,    ///< concurrency-control conflict, restart budget spent
  kSystemAborted,      ///< node failure / shutdown while in flight
};

[[nodiscard]] constexpr std::string_view to_string(TxnOutcome o) {
  switch (o) {
    case TxnOutcome::kCommitted: return "committed";
    case TxnOutcome::kMissedDeadline: return "missed-deadline";
    case TxnOutcome::kOverloadRejected: return "overload-rejected";
    case TxnOutcome::kConflictAborted: return "conflict-aborted";
    case TxnOutcome::kSystemAborted: return "system-aborted";
  }
  return "?";
}

/// Where the Log Writer sends the redo stream (paper §3).
enum class LogMode : std::uint8_t {
  kMirror = 0,   ///< normal mode: ship to Mirror Node, commit on its ack
  kDirectDisk,   ///< transient/single-node mode: synchronous local disk write
  kOff,          ///< logging disabled (the paper's "No logs" optimal series)
};

[[nodiscard]] constexpr std::string_view to_string(LogMode m) {
  switch (m) {
    case LogMode::kMirror: return "mirror";
    case LogMode::kDirectDisk: return "direct-disk";
    case LogMode::kOff: return "off";
  }
  return "?";
}

/// Role of a node inside the RODAIN pair (paper §2).
enum class NodeRole : std::uint8_t {
  kPrimaryWithMirror = 0,  ///< serving transactions, shipping logs to mirror
  kPrimaryAlone,           ///< serving transactions, logging straight to disk
  kMirror,                 ///< maintaining the copy, acking commit records
  kRecovering,             ///< rebuilding state before rejoining as mirror
  kDown,                   ///< crashed
};

[[nodiscard]] constexpr std::string_view to_string(NodeRole r) {
  switch (r) {
    case NodeRole::kPrimaryWithMirror: return "primary+mirror";
    case NodeRole::kPrimaryAlone: return "primary-alone";
    case NodeRole::kMirror: return "mirror";
    case NodeRole::kRecovering: return "recovering";
    case NodeRole::kDown: return "down";
  }
  return "?";
}

}  // namespace rodain
