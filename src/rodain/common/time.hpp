// Virtual-time-friendly time types.
//
// The whole engine is written against these strong types rather than
// std::chrono so that the same code runs under the discrete-event simulator
// (virtual microseconds) and the real-time runtime (steady_clock microseconds)
// without conversion ambiguity.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace rodain {

/// A span of time with microsecond resolution. May be negative.
struct Duration {
  std::int64_t us{0};

  [[nodiscard]] static constexpr Duration micros(std::int64_t v) { return Duration{v}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t v) { return Duration{v * 1000}; }
  [[nodiscard]] static constexpr Duration millis_f(double v) {
    return Duration{static_cast<std::int64_t>(v * 1000.0)};
  }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds_f(double v) {
    return Duration{static_cast<std::int64_t>(v * 1'000'000.0)};
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(us) / 1000.0; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(us) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration{us + o.us}; }
  constexpr Duration operator-(Duration o) const { return Duration{us - o.us}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{us * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{us / k}; }
  constexpr Duration& operator+=(Duration o) { us += o.us; return *this; }
  constexpr Duration& operator-=(Duration o) { us -= o.us; return *this; }
  [[nodiscard]] constexpr bool is_zero() const { return us == 0; }
  [[nodiscard]] constexpr bool is_positive() const { return us > 0; }
};

/// An absolute instant on the driving clock (simulated or steady).
struct TimePoint {
  std::int64_t us{0};

  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const TimePoint&) const = default;
  constexpr TimePoint operator+(Duration d) const { return TimePoint{us + d.us}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{us - d.us}; }
  constexpr Duration operator-(TimePoint o) const { return Duration{us - o.us}; }
  constexpr TimePoint& operator+=(Duration d) { us += d.us; return *this; }
};

[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(TimePoint t);

namespace literals {
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::micros(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::millis(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace rodain
