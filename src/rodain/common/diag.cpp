#include "rodain/common/diag.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace rodain::diag {

namespace {
std::atomic<Level> g_level{Level::kWarn};

constexpr const char* level_tag(Level l) {
  switch (l) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}

/// Monotonic seconds since the first log line (steady clock), so lines from
/// any thread carry a common, strictly comparable time base.
double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration<double>(clock::now() - origin).count();
}
}  // namespace

void set_level(Level l) { g_level.store(l, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

void logf(Level l, const char* fmt, ...) {
  if (l < level()) return;
  // Compose the whole line (timestamp + level + message + newline) into one
  // buffer and emit it with a single fwrite: concurrent threads may
  // interleave lines but never characters within a line.
  char buf[1200];
  int n = std::snprintf(buf, sizeof buf, "[%10.4f rodain %s] ",
                        monotonic_seconds(), level_tag(l));
  if (n < 0) return;
  std::size_t len = static_cast<std::size_t>(n);
  va_list args;
  va_start(args, fmt);
  const int m = std::vsnprintf(buf + len, sizeof buf - len - 1, fmt, args);
  va_end(args);
  if (m > 0) {
    len += static_cast<std::size_t>(m);
    if (len > sizeof buf - 2) len = sizeof buf - 2;  // truncated
  }
  buf[len++] = '\n';
  std::fwrite(buf, 1, len, stderr);
}

}  // namespace rodain::diag
