#include "rodain/common/diag.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace rodain::diag {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

constexpr const char* level_tag(Level l) {
  switch (l) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_level(Level l) { g_level.store(l, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

void logf(Level l, const char* fmt, ...) {
  if (l < level()) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[rodain %s] %s\n", level_tag(l), buf);
}

}  // namespace rodain::diag
