// Diagnostic logging (node events, failover decisions). Distinct from the
// database redo log in rodain/log — this is operator-facing text output.
#pragma once

#include <cstdarg>
#include <string_view>

namespace rodain::diag {

enum class Level : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold. Defaults to kWarn so tests and benches stay quiet;
/// examples raise it to kInfo.
void set_level(Level level);
[[nodiscard]] Level level();

/// printf-style emit; no-op when below the threshold.
void logf(Level level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace rodain::diag

#define RODAIN_TRACE(...) ::rodain::diag::logf(::rodain::diag::Level::kTrace, __VA_ARGS__)
#define RODAIN_DEBUG(...) ::rodain::diag::logf(::rodain::diag::Level::kDebug, __VA_ARGS__)
#define RODAIN_INFO(...) ::rodain::diag::logf(::rodain::diag::Level::kInfo, __VA_ARGS__)
#define RODAIN_WARN(...) ::rodain::diag::logf(::rodain::diag::Level::kWarn, __VA_ARGS__)
#define RODAIN_ERROR(...) ::rodain::diag::logf(::rodain::diag::Level::kError, __VA_ARGS__)
