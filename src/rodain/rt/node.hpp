// The real-time runtime: a RODAIN node on actual threads and sockets.
//
// Same passive engine as the simulator, driven by worker threads instead of
// virtual time: an EDF-ordered ready queue feeds workers, a timer thread
// enforces firm deadlines, the Log Writer ships redo records over TCP to a
// peer node running the Mirror role, and a heartbeat/watchdog thread drives
// the §2 role transitions.
//
// Locking (DESIGN.md §11): two node-level mutexes instead of the historical
// single lock. `commit_mu_` serializes everything that mutates engine or
// replication state — validation, write phase, log emission, role flips,
// admission, deadline aborts. `queue_mu_` guards only the EDF ready queue
// and the per-transaction worker-ownership flags, so workers can pop work
// and park without convoying on committers. OCC read-phase steps run with
// NEITHER mutex held (Engine::step_read_unlocked): reads come from
// per-record seqlock snapshots and the B+-tree's reader lock. Lock order:
// commit_mu_ -> queue_mu_ -> per-transaction leaf mutexes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>

#include "rodain/common/clock.hpp"
#include "rodain/common/stats.hpp"
#include "rodain/engine/engine.hpp"
#include "rodain/obs/series.hpp"
#include "rodain/log/log_storage.hpp"
#include "rodain/log/writer.hpp"
#include "rodain/log/checkpointer.hpp"
#include "rodain/net/channel.hpp"
#include "rodain/net/http.hpp"
#include "rodain/obs/availability.hpp"
#include "rodain/repl/mirror.hpp"
#include "rodain/repl/primary.hpp"
#include "rodain/log/recovery.hpp"
#include "rodain/sched/overload.hpp"
#include "rodain/storage/ckpt_manifest.hpp"

namespace rodain::rt {

struct NodeConfig {
  engine::EngineConfig engine{};  ///< costs default to zero: native speed
  sched::OverloadConfig overload{};
  std::size_t worker_threads{1};
  /// Redo log file; empty keeps the log in memory (tests, demos).
  std::string log_path{};
  bool fsync_log{false};
  /// Non-zero switches the redo log to the segmented store: `log_path` is
  /// then a directory, sealed segments rotate at this size, and every
  /// successful checkpoint truncates segments below its boundary.
  std::size_t log_segment_bytes{0};
  /// Periodic full checkpoints (bounding restart-recovery work). Empty
  /// path or zero interval disables the daemon.
  std::string checkpoint_path{};
  Duration checkpoint_interval{Duration::zero()};
  /// Fuzzy checkpoints (DESIGN.md §15): a primary writes checkpoints without
  /// stalling committers — an O(1) snapshot-epoch flip under the install
  /// gate, then the encoder walks the store off-lock while writes proceed,
  /// alternating full base files with incremental delta files chained by
  /// `<checkpoint_path>.manifest`. Off (or no engine: mirror-side
  /// checkpoints) falls back to the legacy stop-the-world full encode.
  bool fuzzy_checkpoint{true};
  /// Deltas written between full bases in fuzzy mode; the next checkpoint
  /// after this many deltas re-bases the chain.
  std::size_t checkpoint_delta_limit{4};
  /// Instant recovery (DESIGN.md §12, segmented log only):
  /// recover_from_local_state loads the checkpoint and *indexes* the
  /// surviving segments instead of replaying them, so start_primary serves
  /// immediately; first touch replays an object's redo chain on demand and
  /// a background sweeper drains the rest. Off by default: a full replay
  /// reports exact committed_applied counts and leaves nothing deferred.
  bool instant_recovery{false};
  /// Background-sweep cadence and per-slice transaction budget while the
  /// redo index drains (each slice runs under the commit mutex).
  Duration recovery_sweep_interval{Duration::millis(1)};
  std::size_t recovery_sweep_txns{256};
  Duration heartbeat_interval{Duration::millis(100)};
  Duration watchdog_timeout{Duration::millis(500)};
  /// Oldest unacked mirror shipment older than this declares the mirror
  /// lost (committers are never stranded). Zero disables.
  Duration ack_timeout{Duration::millis(250)};
  /// Grace window for a dropped mirror link before escalating to
  /// on_mirror_lost; gives reconnect/backoff a chance to ride out flaps.
  /// Zero keeps the historical instant escalation.
  Duration disconnect_grace{Duration::zero()};
  /// Group-commit batching for the mirror ship path (DESIGN.md §9); flush
  /// timers run on the node's timer thread. The default ships every
  /// submission immediately.
  log::LogWriter::BatchOptions log_batch{};
  std::size_t store_capacity_hint{1024};
  /// Sample the process metrics registry into a time-series on this
  /// interval (zero disables the sampler; requires obs::init enabled).
  Duration metrics_snapshot_interval{Duration::zero()};
  /// Live observability endpoint on 127.0.0.1: serves /metrics (Prometheus
  /// text), /vars (JSON), /trace (Chrome trace dump) and /healthz (role +
  /// serving). 0 picks a free port (Node::http_port() tells which); a
  /// negative value (the default) disables the server.
  int http_port{-1};

  NodeConfig() {
    engine.costs = engine::CostModel::zero();
    // CI runs the whole integration tier a second time with RODAIN_WORKERS=4
    // so every test exercises the parallel read phase.
    if (const char* env = std::getenv("RODAIN_WORKERS")) {
      char* end = nullptr;
      const long n = std::strtol(env, &end, 10);
      if (end != env && n > 0 && n <= 256) {
        worker_threads = static_cast<std::size_t>(n);
      }
    }
  }
};

struct CommitInfo {
  TxnOutcome outcome{TxnOutcome::kCommitted};
  bool late{false};
  Duration latency{Duration::zero()};
  int restarts{0};
  /// The values every read observed, in program order (only populated when
  /// EngineConfig::capture_reads is on — serializability tests).
  std::vector<storage::Value> captured_reads;
};

class Node {
 public:
  explicit Node(NodeConfig config, std::string name = "rodain");
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // ---- data (load before starting a role) ------------------------------
  [[nodiscard]] storage::ObjectStore& store() { return store_; }
  [[nodiscard]] storage::BPlusTree& index() { return index_; }

  // ---- lifecycle --------------------------------------------------------
  /// Serve transactions. `peer` must be non-null for LogMode::kMirror and
  /// may be non-null otherwise (to serve join requests later).
  void start_primary(LogMode mode, net::Channel* peer = nullptr);
  /// Maintain the peer's database copy; takes over if the peer goes silent.
  void start_mirror(net::Channel& peer, ValidationTs expected_next = 1);
  /// Rejoin after a restart: snapshot + catch-up from the serving peer.
  void start_rejoin(net::Channel& peer);
  void stop();

  /// Cold-start recovery: rebuild the store from the configured checkpoint
  /// and log files. Call before start_primary on a restarted node; the
  /// validation sequence continues past everything recovered.
  Result<log::RecoveryStats> recover_from_local_state();

  /// Write a checkpoint now (also runs periodically when configured).
  Status write_checkpoint();

  [[nodiscard]] NodeRole role() const;
  [[nodiscard]] bool serving() const;

  // ---- client API -------------------------------------------------------
  using DoneFn = std::function<void(const CommitInfo&)>;
  /// Asynchronous submission; `done` runs on an internal thread.
  void submit(txn::TxnProgram program, DoneFn done);
  /// Blocking convenience wrapper.
  CommitInfo execute(txn::TxnProgram program);
  /// One-shot read of a single object's committed value.
  [[nodiscard]] Result<storage::Value> get(ObjectId oid);

  /// Lock-free committed read via the store's seqlock (no transaction, no
  /// commit mutex). kNotFound: absent or tombstoned. kUnavailable: not
  /// serving (checked before AND after the snapshot, so a value read across
  /// a role flip is discarded), or seqlock retries exhausted — the caller
  /// falls back to the transactional path.
  [[nodiscard]] Result<storage::Value> read_committed(ObjectId oid);

  // ---- telemetry --------------------------------------------------------
  [[nodiscard]] TxnCounters counters() const;
  [[nodiscard]] LatencyHistogram commit_latency() const;
  [[nodiscard]] ValidationTs mirror_applied_seq() const;
  /// Rows sampled by the periodic metrics sampler (copy; thread-safe).
  [[nodiscard]] obs::TimeSeries metrics_series() const;
  /// Snapshot of this node's serving/outage timeline (copy; thread-safe).
  [[nodiscard]] obs::AvailabilityTimeline availability() const;
  /// Port of the live observability endpoint (0 when disabled).
  [[nodiscard]] std::uint16_t http_port() const;

 private:
  struct Active {
    std::unique_ptr<txn::Transaction> txn;
    DoneFn done;
    bool owned_by_worker{false};
    bool resume_pending{false};
    bool late{false};
  };

  /// Wraps the raw channel so every inbound frame and disconnect runs
  /// under the commit mutex (replication state is not thread-safe). Handlers
  /// capture the node and the epoch at install time: when the node tears a
  /// role down it bumps the epoch under the mutex, so a late callback from
  /// the socket reader thread is dropped instead of touching freed
  /// replication objects.
  class GuardedChannel final : public net::Channel {
   public:
    GuardedChannel(Node& node, net::Channel& inner) : node_(node), inner_(inner) {}
    void set_message_handler(MessageHandler handler) override;
    void set_disconnect_handler(DisconnectHandler handler) override;
    Status send(std::vector<std::byte> frame) override { return inner_.send(std::move(frame)); }
    [[nodiscard]] bool connected() const override { return inner_.connected(); }
    void close() override { inner_.close(); }

   private:
    Node& node_;
    net::Channel& inner_;
  };

  void build_primary_locked(LogMode mode);
  void start_http();
  [[nodiscard]] net::HttpServer::Response route_http(const std::string& path);
  void start_sampler_locked();
  void sample_metrics_locked();
  void become_locked(NodeRole role);
  void escalate_mirror_lost_locked(const char* why);
  void take_over_locked();
  bool serving_locked() const;
  Status write_checkpoint_locked();
  Status write_checkpoint_at_locked(ValidationTs boundary);
  /// Fuzzy checkpoint write (DESIGN.md §15): flips the snapshot epoch under
  /// the install gate (the only stall, O(1)), then RELEASES commit_mu_ for
  /// the encode and file write, re-acquiring it before returning. Safe
  /// because the Checkpointer's single-flight guard rejects concurrent
  /// runs and stop() joins the checkpointer thread before tearing the
  /// engine down. Entered and exited with commit_mu_ held.
  Status write_checkpoint_fuzzy_locked(ValidationTs boundary);
  /// Disk-served join (DESIGN.md §12): checkpoint bytes + the log records
  /// covering (boundary, installed_low_water], or nullopt when the on-disk
  /// artifacts cannot vouch for dense coverage (then the replicator falls
  /// back to a live snapshot encode). Requires commit_mu_.
  std::optional<repl::JoinArtifacts> join_artifacts_locked();

  void worker_loop();
  void timer_loop();
  void heartbeat_loop();
  /// Background replay while the redo index drains (under commit_mu_).
  void sweeper_loop();
  /// Detach + retire a drained/abandoned redo index (requires commit_mu_).
  void finish_recovery_locked(const char* how);
  /// Queue a transaction for a worker (takes queue_mu_ itself). Callers on
  /// resume paths (log-durable, lock-granted, victim-restart hooks) hold
  /// commit_mu_, which is what makes park-vs-resume race-free.
  void push_ready(TxnId id);
  /// Acquire commit_mu_ into `lock`, timing contended waits.
  void lock_commit(std::unique_lock<std::mutex>& lock);
  /// Drive one owned transaction to a boundary. Entered with queue_mu_
  /// held (via `qlock`); returns with it held again.
  void drive(TxnId id, std::unique_lock<std::mutex>& qlock);
  /// Requires commit_mu_; takes queue_mu_ internally for the active_ erase.
  void finish_locked(TxnId id, TxnOutcome outcome,
                     std::vector<std::pair<DoneFn, CommitInfo>>& callbacks);

  NodeConfig config_;
  std::string name_;
  RealClock clock_;

  /// Serializes engine mutation, replication, role flips, admission and
  /// telemetry. Narrow by design: the OCC read phase never holds it.
  mutable std::mutex commit_mu_;
  /// Guards ready_ and the Active worker-ownership flags; active_ map
  /// structure is written under BOTH mutexes, so either lock may read it.
  mutable std::mutex queue_mu_;
  std::condition_variable ready_cv_;  ///< pairs with queue_mu_
  std::condition_variable timer_cv_;  ///< pairs with commit_mu_
  /// Written under commit_mu_ AND queue_mu_ together (so both cv waits see
  /// it); atomic because unlocked read-phase workers poll it with no lock.
  std::atomic<bool> stopping_{false};

  storage::ObjectStore store_;
  storage::BPlusTree index_;
  std::unique_ptr<log::LogStorage> disk_;
  std::unique_ptr<log::LogWriter> log_writer_;
  std::unique_ptr<engine::Engine> engine_;
  std::unique_ptr<GuardedChannel> guarded_channel_;
  std::unique_ptr<repl::PrimaryReplicator> replicator_;
  std::unique_ptr<repl::MirrorService> mirror_;
  /// Captured from MirrorService::disk_log_dense() at takeover, sticky for
  /// this process lifetime: false means a stored-log write failed while we
  /// were the mirror, so join_artifacts_locked must not serve catch-up from
  /// the disk log (it may have holes) — live encode takes over.
  bool mirror_disk_dense_{true};
  net::Channel* peer_{nullptr};

  sched::OverloadManager overload_;
  /// Serving/outage timeline (under commit_mu_): role flips feed it, every
  /// first-commit-of-a-window stamps time-to-first-commit.
  obs::AvailabilityTimeline availability_;
  std::unique_ptr<net::HttpServer> http_;
  /// Written under commit_mu_; atomic so role()/serving() and the unlocked
  /// read_committed fast path never touch the commit mutex.
  std::atomic<NodeRole> role_{NodeRole::kDown};
  /// Bumped (under commit_mu_) whenever replication objects are torn down;
  /// stale channel callbacks compare against it and bail out.
  std::uint64_t channel_epoch_{0};
  /// When the mirror link dropped (primary side, under commit_mu_);
  /// escalation waits out config_.disconnect_grace.
  std::optional<TimePoint> link_down_since_;

  std::unordered_map<TxnId, Active> active_;
  struct ReadyOrder {
    bool operator()(const std::pair<PriorityKey, TxnId>& a,
                    const std::pair<PriorityKey, TxnId>& b) const {
      if (a.first.higher_than(b.first)) return true;
      if (b.first.higher_than(a.first)) return false;
      return a.second < b.second;
    }
  };
  std::set<std::pair<PriorityKey, TxnId>, ReadyOrder> ready_;
  std::multimap<TimePoint, TxnId> deadlines_;
  /// Earliest requested group-commit flush; the timer thread calls
  /// LogWriter::flush_batch() when it comes due (under commit_mu_).
  std::optional<TimePoint> log_flush_at_;

  std::uint64_t next_local_txn_{1};
  std::uint64_t admission_seq_{0};
  TxnCounters counters_;
  LatencyHistogram commit_latency_;

  std::vector<std::thread> workers_;
  std::thread timer_;
  std::thread heartbeater_;
  std::thread checkpointer_;
  std::thread sampler_;
  std::thread sweeper_;
  /// Instant-recovery redo index (DESIGN.md §12). Created under commit_mu_
  /// only while the node is kDown and destroyed only by the destructor, so
  /// serving-time readers may test `recovery_ && recovery_->active()`
  /// without the mutex (active() is the one member that allows that).
  std::unique_ptr<log::RedoIndex> recovery_;
  /// 1 while deferred redo chains remain (mirrors the recovery.mode gauge);
  /// atomic so the HTTP thread can report it regardless of node state.
  std::atomic<int> recovery_mode_{0};
  obs::TimeSeries series_;
  ValidationTs recovered_next_seq_{1};
  /// The segmented-log open trimmed a torn tail left by a crash; folded
  /// into RecoveryStats::torn_tail by recover_from_local_state.
  bool log_tail_trimmed_{false};
  /// Cadence + truncation driver behind the checkpointer thread (under
  /// commit_mu_).
  log::Checkpointer ckpt_;
  /// Fuzzy checkpoint chain state (under commit_mu_ at mutation points; the
  /// encode itself runs off-lock behind ckpt_'s single-flight guard). A
  /// fresh process always starts the chain with a new base: the previous
  /// chain's floor epoch is meaningless against a restarted store.
  bool ckpt_have_base_{false};
  std::size_t ckpt_deltas_since_base_{0};
  std::uint64_t ckpt_floor_epoch_{0};
  storage::CkptManifest ckpt_chain_;
};

}  // namespace rodain::rt
