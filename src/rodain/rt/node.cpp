#include "rodain/rt/node.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <filesystem>

#include "rodain/common/diag.hpp"
#include "rodain/log/reorder.hpp"
#include "rodain/log/segment.hpp"
#include "rodain/obs/obs.hpp"
#include "rodain/storage/checkpoint.hpp"
#include "rodain/storage/fuzzy_checkpoint.hpp"

namespace rodain::rt {

namespace {
struct NodeMetrics {
  obs::Counter& submitted = obs::metrics().counter("node.txn.submitted");
  obs::Counter& committed = obs::metrics().counter("node.txn.committed");
  obs::Counter& missed_deadline =
      obs::metrics().counter("node.txn.missed_deadline");
  obs::Counter& conflict_aborted =
      obs::metrics().counter("node.txn.conflict_aborted");
  obs::Counter& system_aborted =
      obs::metrics().counter("node.txn.system_aborted");
  obs::Counter& role_transitions =
      obs::metrics().counter("node.role_transitions");
  obs::Timer& commit_latency = obs::metrics().timer("node.commit_latency_us");
  obs::Timer& commit_mu_wait = obs::metrics().timer("node.commit_mu_wait");
  obs::Gauge& role = obs::metrics().gauge("node.role");
  obs::Gauge& active_txns = obs::metrics().gauge("node.active_txns");
  obs::Gauge& miss_ratio = obs::metrics().gauge("node.miss_ratio");
  /// Checkpoint observability (DESIGN.md §7, §15): gate-held stall time,
  /// failed writes, and the fuzzy chain's byte/dirtiness breakdown.
  obs::Timer& checkpoint_stall =
      obs::metrics().timer("node.checkpoint_stall_us");
  obs::Counter& checkpoint_failures =
      obs::metrics().counter("node.checkpoint_failures");
  obs::Counter& ckpt_bytes_full = obs::metrics().counter("ckpt.bytes_full");
  obs::Counter& ckpt_bytes_delta = obs::metrics().counter("ckpt.bytes_delta");
  obs::Gauge& ckpt_dirty_ratio = obs::metrics().gauge("ckpt.dirty_ratio");
};
NodeMetrics& nm() {
  static NodeMetrics m;
  return m;
}

// The lock-free read path shares the engine's retry counter: a snapshot
// retry costs the same whether a worker or a client-side get() paid it.
obs::Counter& read_retry_counter() {
  static obs::Counter& c = obs::metrics().counter("engine.read_retries");
  return c;
}
}  // namespace

// ----------------------------------------------------- guarded channel ---

void Node::GuardedChannel::set_message_handler(MessageHandler handler) {
  // Do not capture `this`: the wrapper outlives the GuardedChannel inside
  // the socket's handler slot. The epoch check (under the commit mutex)
  // makes sure `h` is only invoked while the objects it points into still
  // exist.
  Node* node = &node_;
  const std::uint64_t epoch = node_.channel_epoch_;
  inner_.set_message_handler(
      [node, epoch, h = std::move(handler)](std::vector<std::byte> frame) {
        std::unique_lock lock(node->commit_mu_);
        if (node->channel_epoch_ != epoch) return;  // role torn down
        // Parallel commit path (DESIGN.md §13): frames can serve joins,
        // whose snapshot boundary is the installed low-water. Seal first so
        // the log writer's tail covers every installed transaction, and
        // hold the install gate while the handler walks replication state
        // so no committer is mid-install under it.
        std::unique_lock<std::shared_mutex> gate;
        if (node->engine_ && node->engine_->parallel_commit()) {
          node->engine_->seal_epoch();
          gate = std::unique_lock(node->engine_->install_gate());
        }
        if (h) h(std::move(frame));
        // Frames can complete transactions (commit acks): wake workers.
        // (The resume itself went through push_ready above, under
        // commit_mu_, so parked owners cannot miss it.)
        node->ready_cv_.notify_all();
      });
}

void Node::GuardedChannel::set_disconnect_handler(DisconnectHandler handler) {
  Node* node = &node_;
  const std::uint64_t epoch = node_.channel_epoch_;
  inner_.set_disconnect_handler([node, epoch, h = std::move(handler)] {
    std::unique_lock lock(node->commit_mu_);
    if (node->channel_epoch_ != epoch) return;
    if (h) h();
  });
}

// ----------------------------------------------------------------- node ---

Node::Node(NodeConfig config, std::string name)
    : config_(config),
      name_(std::move(name)),
      store_(config.store_capacity_hint),
      overload_(config.overload) {
  if (config_.log_path.empty()) {
    disk_ = std::make_unique<log::MemoryLogStorage>();
  } else if (config_.log_segment_bytes > 0) {
    log::SegmentedLogStorage::Options seg;
    seg.segment_bytes = config_.log_segment_bytes;
    seg.fsync_on_flush = config_.fsync_log;
    auto segmented = log::SegmentedLogStorage::open(config_.log_path, seg);
    if (!segmented.is_ok()) {
      RODAIN_ERROR("%s: cannot open segmented log %s (%s); using memory log",
                   name_.c_str(), config_.log_path.c_str(),
                   segmented.status().to_string().c_str());
      disk_ = std::make_unique<log::MemoryLogStorage>();
    } else {
      log_tail_trimmed_ = segmented.value()->tail_trimmed_at_open();
      disk_ = std::move(segmented).value();
    }
  } else {
    auto file = log::FileLogStorage::open(config_.log_path, config_.fsync_log);
    if (!file.is_ok()) {
      RODAIN_ERROR("%s: cannot open log %s (%s); using memory log",
                   name_.c_str(), config_.log_path.c_str(),
                   file.status().to_string().c_str());
      disk_ = std::make_unique<log::MemoryLogStorage>();
    } else {
      disk_ = std::move(file).value();
    }
  }
  log::Checkpointer::Options ckpt;
  ckpt.interval = config_.checkpoint_interval;
  ckpt.boundary = [this] {
    return engine_ ? engine_->installed_low_water() : ValidationTs{0};
  };
  ckpt.write = [this](ValidationTs b) {
    // Fuzzy needs a primary-side engine (the flip runs under its install
    // gate; mirror applies are not excludable that way) — anything else
    // keeps the legacy stop-the-world encode.
    if (config_.fuzzy_checkpoint && engine_) {
      return write_checkpoint_fuzzy_locked(b);
    }
    return write_checkpoint_at_locked(b);
  };
  ckpt.log = disk_.get();
  ckpt_.configure(std::move(ckpt));
  // Lifecycle stage clocks read this node's steady clock; the engine stamps
  // read/validate/write transitions, the log writer ship/ack.
  config_.engine.clock = &clock_;
  if (config_.http_port >= 0) start_http();
}

void Node::start_http() {
  auto server = net::HttpServer::listen(
      static_cast<std::uint16_t>(config_.http_port),
      [this](const std::string& path) { return route_http(path); });
  if (!server.is_ok()) {
    RODAIN_ERROR("%s: observability endpoint failed: %s", name_.c_str(),
                 server.status().to_string().c_str());
    return;
  }
  http_ = std::move(server).value();
  RODAIN_INFO("%s: observability endpoint on 127.0.0.1:%u", name_.c_str(),
              static_cast<unsigned>(http_->port()));
}

net::HttpServer::Response Node::route_http(const std::string& path) {
  // Runs on the HTTP server thread. Touches only the process-wide obs
  // registries and this node's atomics — no node mutex, so a wedged commit
  // path can still be inspected live.
  net::HttpServer::Response r;
  if (path == "/metrics") {
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = obs::metrics().render_text();
  } else if (path == "/vars") {
    r.content_type = "application/json";
    r.body = obs::metrics().render_json();
  } else if (path == "/trace") {
    r.content_type = "application/json";
    r.body = obs::tracer().dump_json();
  } else if (path == "/healthz") {
    const NodeRole current = role();
    const bool up = serving();
    r.status = up ? 200 : 503;
    r.content_type = "application/json";
    r.body = "{\"node\":\"" + name_ + "\",\"role\":\"" +
             std::string(to_string(current)) +
             "\",\"serving\":" + (up ? "true" : "false") +
             ",\"recovery_mode\":" +
             std::to_string(recovery_mode_.load(std::memory_order_acquire)) +
             "}\n";
  } else {
    r.status = 404;
    r.body = "unknown path; routes: /metrics /vars /trace /healthz\n";
  }
  return r;
}

Node::~Node() { stop(); }

NodeRole Node::role() const { return role_.load(std::memory_order_acquire); }

bool Node::serving() const {
  const NodeRole r = role_.load(std::memory_order_acquire);
  return r == NodeRole::kPrimaryWithMirror || r == NodeRole::kPrimaryAlone;
}

void Node::become_locked(NodeRole role) {
  const NodeRole old = role_.load(std::memory_order_relaxed);
  if (old == role) return;
  RODAIN_INFO("%s: role %s -> %s", name_.c_str(),
              std::string(to_string(old)).c_str(),
              std::string(to_string(role)).c_str());
  role_.store(role, std::memory_order_release);
  nm().role_transitions.inc();
  nm().role.set(static_cast<double>(static_cast<int>(role)));
  if (obs::tracing_enabled()) {
    obs::tracer().record_instant(obs::Phase::kRoleChange,
                                 static_cast<std::uint64_t>(role));
  }
  // Availability timeline: serving roles open a serving window; leaving one
  // opens an outage. A node that was never serving (fresh mirror, rejoin)
  // does not log an outage for its mirror tenure.
  const std::int64_t t = clock_.now().us;
  const bool now_serving =
      role == NodeRole::kPrimaryWithMirror || role == NodeRole::kPrimaryAlone;
  if (now_serving) {
    availability_.set_serving(true, t);
  } else if (availability_.serving()) {
    availability_.set_serving(false, t);
  }
  availability_.publish_metrics("node.avail", t);
}

void Node::escalate_mirror_lost_locked(const char* why) {
  if (role_.load(std::memory_order_relaxed) != NodeRole::kPrimaryWithMirror) {
    return;
  }
  RODAIN_INFO("%s: mirror lost (%s)", name_.c_str(), why);
  link_down_since_.reset();
  log_writer_->on_mirror_lost();
  become_locked(NodeRole::kPrimaryAlone);
  ready_cv_.notify_all();
}

void Node::build_primary_locked(LogMode mode) {
  ++channel_epoch_;  // invalidate callbacks into the old role's objects
  link_down_since_.reset();
  mirror_.reset();
  replicator_.reset();
  log_writer_ = std::make_unique<log::LogWriter>(LogMode::kOff, disk_.get(), nullptr);
  log_writer_->set_stage_clock(&clock_);
  if (peer_) {
    guarded_channel_ = std::make_unique<GuardedChannel>(*this, *peer_);
    repl::PrimaryReplicator::Hooks hooks;
    hooks.snapshot_boundary = [this] {
      return engine_ ? engine_->installed_low_water() : ValidationTs{0};
    };
    // Runs under commit_mu_ (GuardedChannel wraps every inbound frame).
    hooks.join_artifacts = [this] { return join_artifacts_locked(); };
    hooks.on_mirror_joined = [this] {
      log_writer_->set_mode(LogMode::kMirror);
      become_locked(NodeRole::kPrimaryWithMirror);
    };
    hooks.on_disconnect = [this] {
      if (role_.load(std::memory_order_relaxed) !=
          NodeRole::kPrimaryWithMirror) {
        return;
      }
      if (!config_.disconnect_grace.is_positive()) {
        escalate_mirror_lost_locked("link lost");
      } else if (!link_down_since_) {
        link_down_since_ = clock_.now();
        RODAIN_INFO("%s: mirror link down, grace %lld us", name_.c_str(),
                    static_cast<long long>(config_.disconnect_grace.us));
      }
    };
    hooks.on_reconnected = [this] {
      if (link_down_since_) {
        RODAIN_INFO("%s: mirror link restored within grace", name_.c_str());
        link_down_since_.reset();
      }
    };
    hooks.on_peer_primary = [this, warned = false](ValidationTs peer) mutable {
      // Split brain in the threaded runtime is detected and surfaced, not
      // auto-resolved: demoting a live primary means quiescing the worker
      // pool mid-transaction, so the deployment fences manually (the sim
      // runtime auto-demotes — DESIGN.md §8 documents the asymmetry).
      obs::metrics().counter("node.split_brain_detected").inc();
      if (!warned) {
        warned = true;
        RODAIN_WARN(
            "%s: split brain: peer also claims a primary role "
            "(peer height %llu vs ours %llu) — manual fencing required",
            name_.c_str(), static_cast<unsigned long long>(peer),
            static_cast<unsigned long long>(
                engine_ ? engine_->installed_low_water() : 0));
      }
    };
    replicator_ = std::make_unique<repl::PrimaryReplicator>(
        *guarded_channel_, clock_, store_, *log_writer_, std::move(hooks));
    replicator_->set_index(&index_);
    log_writer_->set_shipper(replicator_.get());
    log_writer_->configure_ack_timeout(&clock_, config_.ack_timeout, [this] {
      escalate_mirror_lost_locked("commit ack timeout");
    });
    // The schedule hook runs under commit_mu_ (every submit path holds it);
    // flush_batch() is then driven by the timer thread, also under it.
    log_flush_at_.reset();
    log_writer_->configure_batching(
        &clock_, config_.log_batch, [this](Duration d) {
          const TimePoint at = clock_.now() + d;
          if (!log_flush_at_ || at < *log_flush_at_) log_flush_at_ = at;
          timer_cv_.notify_all();
        });
  }
  log_writer_->set_mode(mode);

  // Parallel commit (DESIGN.md §13): with more than one worker, OCC
  // transactions validate and install outside commit_mu_ (per-record write
  // intents + the engine's validation mutex), and redo records reach the
  // LogWriter through the epoch sealer. The engine opts back out for
  // controllers without a lock-free read phase (2PL).
  config_.engine.parallel_commit =
      config_.engine.parallel_commit || config_.worker_threads > 1;

  // Every engine hook fires with commit_mu_ held (worker serial sections,
  // channel handlers, the timer's flush path), so push_ready's park-resume
  // handshake is race-free by construction.
  engine::Engine::Hooks hooks;
  hooks.on_victim_restart = [this](TxnId id) { push_ready(id); };
  hooks.on_lock_granted = [this](TxnId id) { push_ready(id); };
  hooks.on_log_durable = [this](TxnId id) { push_ready(id); };
  engine_ = std::make_unique<engine::Engine>(config_.engine, store_, &index_,
                                             *log_writer_, std::move(hooks));
  if (recovery_ && recovery_->active()) {
    engine_->set_recovery(recovery_.get());
  }
}

void Node::start_primary(LogMode mode, net::Channel* peer) {
  std::unique_lock lock(commit_mu_);
  assert(role_.load(std::memory_order_relaxed) == NodeRole::kDown);
  peer_ = peer;
  {
    std::lock_guard q(queue_mu_);
    stopping_.store(false, std::memory_order_relaxed);
  }
  build_primary_locked(mode);
  engine_->set_next_validation_seq(recovered_next_seq_);
  become_locked(mode == LogMode::kMirror ? NodeRole::kPrimaryWithMirror
                                         : NodeRole::kPrimaryAlone);
  for (std::size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  timer_ = std::thread([this] { timer_loop(); });
  if (peer_) heartbeater_ = std::thread([this] { heartbeat_loop(); });
  if (!config_.checkpoint_path.empty() &&
      config_.checkpoint_interval.is_positive()) {
    checkpointer_ = std::thread([this] {
      std::unique_lock ckpt_lock(commit_mu_);
      while (!stopping_.load(std::memory_order_relaxed)) {
        timer_cv_.wait_for(
            ckpt_lock, std::chrono::microseconds(config_.checkpoint_interval.us));
        if (stopping_.load(std::memory_order_relaxed) || !serving_locked()) {
          continue;
        }
        if (recovery_ && recovery_->active()) {
          // A checkpoint at the installed low-water would claim to cover
          // deferred commits whose after-images are still parked in the
          // redo index; wait for the sweep to drain it.
          continue;
        }
        // The Checkpointer owns the cadence (the cv also wakes on every
        // submit) and truncates the log after each successful write.
        ckpt_.tick(clock_.now());
      }
    });
  }
  if (recovery_ && recovery_->active()) {
    sweeper_ = std::thread([this] { sweeper_loop(); });
  }
  start_sampler_locked();
}

void Node::sweeper_loop() {
  std::unique_lock lock(commit_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!recovery_) break;
    if (recovery_->active()) {
      recovery_->sweep(config_.recovery_sweep_txns, store_, &index_);
    }
    if (!recovery_->active()) {
      // Drained — by this sweep, the on-demand path, or an explicit
      // checkpoint drain (then finish already ran and this is a no-op).
      finish_recovery_locked("background sweep drained");
      break;
    }
    timer_cv_.wait_for(
        lock, std::chrono::microseconds(config_.recovery_sweep_interval.us));
  }
}

void Node::finish_recovery_locked(const char* how) {
  // Acquire pairs with the release store in recover_from_local_state: the
  // sweeper or a checkpoint drain entering here must observe the fully
  // initialized redo index the flag published, not just the flag itself
  // (commit_mu_ orders the common paths, but the pairing keeps the flag
  // self-contained for every reader — /healthz reads it with no mutex).
  if (!recovery_ || recovery_mode_.load(std::memory_order_acquire) == 0) {
    return;  // never entered recovery mode, or already finished
  }
  if (engine_) engine_->set_recovery(nullptr);
  recovery_->retire();
  recovery_mode_.store(0, std::memory_order_release);
  obs::metrics().gauge("recovery.mode").set(0.0);
  RODAIN_INFO("%s: instant recovery complete: %s (%llu on-demand, "
              "%llu background replays)",
              name_.c_str(), how,
              static_cast<unsigned long long>(recovery_->ondemand_applied()),
              static_cast<unsigned long long>(recovery_->background_applied()));
  if (obs::tracing_enabled()) {
    obs::tracer().record_instant(obs::Phase::kRecovery, recovery_->last_seq());
  }
}

void Node::start_sampler_locked() {
  if (sampler_.joinable() || !config_.metrics_snapshot_interval.is_positive()) {
    return;
  }
  sampler_ = std::thread([this] {
    std::unique_lock lock(commit_mu_);
    while (!stopping_.load(std::memory_order_relaxed)) {
      timer_cv_.wait_for(
          lock,
          std::chrono::microseconds(config_.metrics_snapshot_interval.us));
      if (stopping_.load(std::memory_order_relaxed)) break;
      sample_metrics_locked();
    }
  });
}

void Node::sample_metrics_locked() {
  if (!obs::enabled()) return;
  // Refresh the point-in-time gauges right before the registry snapshot so
  // the sampled row is internally consistent. active_ structure is written
  // under both mutexes, so reading its size under commit_mu_ is safe.
  nm().active_txns.set(static_cast<double>(active_.size()));
  nm().miss_ratio.set(counters_.miss_ratio());
  obs::metrics().sample_into(series_, obs::now_us());
}

bool Node::serving_locked() const {
  const NodeRole r = role_.load(std::memory_order_relaxed);
  return r == NodeRole::kPrimaryWithMirror || r == NodeRole::kPrimaryAlone;
}

Status Node::write_checkpoint_at_locked(ValidationTs boundary) {
  // Parallel committers install outside commit_mu_; the unique gate makes
  // the store walk see no half-installed transaction. (Mirror-role callers
  // have no engine — their applies run serially under commit_mu_.)
  // The whole encode counts as stall: commit_mu_ is held throughout, so
  // every committer waits for the full store walk (the cost the fuzzy
  // path exists to avoid).
  obs::ScopedTimer stall(nm().checkpoint_stall);
  std::unique_lock<std::shared_mutex> gate;
  if (engine_ && engine_->parallel_commit()) {
    gate = std::unique_lock(engine_->install_gate());
  }
  Status s = storage::write_checkpoint_file(store_, boundary,
                                            config_.checkpoint_path, &index_);
  if (s) {
    RODAIN_INFO("%s: checkpoint written at boundary %llu", name_.c_str(),
                static_cast<unsigned long long>(boundary));
    obs::metrics().counter("node.checkpoints").inc();
    if (obs::tracing_enabled()) {
      obs::tracer().record_instant(obs::Phase::kCheckpoint, boundary);
    }
  } else {
    nm().checkpoint_failures.inc();
  }
  return s;
}

Status Node::write_checkpoint_fuzzy_locked(ValidationTs boundary) {
  // Phase 1 — the only part committers ever wait for: flip the store into
  // snapshot mode and start (or cut) the index journal under writer
  // exclusion. O(retain stripes), independent of store size.
  std::uint64_t capture = 0;
  bool base = false;
  std::vector<storage::IndexOp> journal;
  {
    obs::ScopedTimer stall(nm().checkpoint_stall);
    std::unique_lock<std::shared_mutex> gate;
    if (engine_->parallel_commit()) {
      engine_->seal_epoch();
      gate = std::unique_lock(engine_->install_gate());
    }
    // A base is forced when there is no chain to extend, when the chain is
    // long enough that replaying deltas would dominate recovery, or when
    // the journal was lost (e.g. a failed base write disabled it).
    base = !ckpt_have_base_ ||
           ckpt_deltas_since_base_ >= config_.checkpoint_delta_limit ||
           !index_.journal_enabled();
    capture = store_.snapshot_begin();
    if (base) {
      index_.set_journal(true);
    } else {
      journal = index_.cut_journal();
    }
  }

  // Phase 2 — encode and persist off-lock. Committers keep running; any
  // record they would overwrite before the walker reaches it is retained
  // as a pre-image by the store. Dropping commit_mu_ here is safe: ckpt_
  // is single-flight (running_ guard), and stop() joins the checkpointer
  // thread before tearing down engine_/store_/index_.
  commit_mu_.unlock();
  const std::uint64_t floor = base ? 0 : ckpt_floor_epoch_;
  ByteWriter w(store_.size() * 80 + 64);
  storage::FuzzyEncodeStats stats;
  if (base) {
    stats = storage::encode_fuzzy_base(store_, index_, boundary, w);
  } else {
    stats = storage::encode_fuzzy_delta(store_, journal, boundary, floor, w);
  }
  const std::string suffix =
      (base ? ".b" : ".d") + std::to_string(capture);
  const std::string path = config_.checkpoint_path + suffix;
  Status s = storage::write_file_atomic(path, w.view());
  storage::CkptManifest next;
  if (s) {
    if (!base) next = ckpt_chain_;
    storage::ManifestEntry entry;
    entry.kind = base ? storage::ManifestEntry::Kind::kBase
                      : storage::ManifestEntry::Kind::kDelta;
    entry.boundary = boundary;
    entry.capture_epoch = capture;
    entry.bytes = stats.bytes;
    entry.file =
        std::filesystem::path(config_.checkpoint_path).filename().string() +
        suffix;
    next.entries.push_back(std::move(entry));
    s = storage::write_manifest_file(
        next, storage::manifest_path_for(config_.checkpoint_path));
    if (!s) std::remove(path.c_str());  // unreferenced artifact: delete it
  }
  commit_mu_.lock();
  store_.snapshot_end();

  if (!s) {
    nm().checkpoint_failures.inc();
    if (base) {
      // The journal started in phase 1 only covers ops since this failed
      // base; keeping it would let a later delta chain onto a chain whose
      // base never landed. Force the next attempt to be a base.
      index_.set_journal(false);
      ckpt_have_base_ = false;
    } else {
      // Put the cut ops back so the next delta still covers them.
      index_.restore_journal(std::move(journal));
    }
    return s;
  }

  // Prune artifacts the new manifest no longer references (a replaced
  // chain after a base, or nothing after a delta).
  for (const storage::ManifestEntry& old : ckpt_chain_.entries) {
    const bool kept =
        std::any_of(next.entries.begin(), next.entries.end(),
                    [&](const storage::ManifestEntry& e) {
                      return e.file == old.file;
                    });
    if (!kept) {
      std::remove(
          storage::sibling_path(config_.checkpoint_path, old.file).c_str());
    }
  }
  ckpt_chain_ = std::move(next);
  ckpt_have_base_ = true;
  ckpt_deltas_since_base_ = base ? 0 : ckpt_deltas_since_base_ + 1;
  ckpt_floor_epoch_ = capture;
  if (base) {
    nm().ckpt_bytes_full.inc(stats.bytes);
    nm().ckpt_dirty_ratio.set(1.0);
  } else {
    nm().ckpt_bytes_delta.inc(stats.bytes);
    const std::size_t live = store_.size();
    nm().ckpt_dirty_ratio.set(
        live == 0 ? 0.0
                  : static_cast<double>(stats.records) /
                        static_cast<double>(live));
  }
  RODAIN_INFO("%s: fuzzy %s checkpoint at boundary %llu (epoch %llu, "
              "%llu records, %llu bytes)",
              name_.c_str(), base ? "base" : "delta",
              static_cast<unsigned long long>(boundary),
              static_cast<unsigned long long>(capture),
              static_cast<unsigned long long>(stats.records),
              static_cast<unsigned long long>(stats.bytes));
  obs::metrics().counter("node.checkpoints").inc();
  if (obs::tracing_enabled()) {
    obs::tracer().record_instant(obs::Phase::kCheckpoint, boundary);
  }
  return Status::ok();
}

Status Node::write_checkpoint_locked() {
  if (recovery_ && recovery_->active()) {
    // The boundary below claims every commit up to the installed low-water
    // is in the store; deferred redo chains would make that a lie. Drain
    // them first (an explicit checkpoint request ends instant recovery).
    recovery_->drain(store_, &index_);
    finish_recovery_locked("drained for checkpoint");
  }
  // The Checkpointer is the single boundary authority: routing the explicit
  // request through run() serializes it with the cadenced timer (single
  // flight), so the covered boundary stays monotone even when the fuzzy
  // path drops commit_mu_ mid-write.
  return ckpt_.run(clock_.now(), /*force=*/true);
}

Status Node::write_checkpoint() {
  std::lock_guard lock(commit_mu_);
  if (config_.checkpoint_path.empty()) {
    return Status::error(ErrorCode::kFailedPrecondition, "no checkpoint path");
  }
  return write_checkpoint_locked();
}

std::optional<repl::JoinArtifacts> Node::join_artifacts_locked() {
  if (config_.log_segment_bytes == 0 || config_.checkpoint_path.empty()) {
    return std::nullopt;
  }
  if (!mirror_disk_dense_) {
    // A stored-log flush failed while this node was the mirror: the disk
    // log may have holes the collector below cannot detect (an entire
    // flushed batch can be missing, not just a torn tail). Serve the join
    // by live encode instead.
    RODAIN_INFO("%s: disk log marked non-dense by the mirror epoch; "
                "falling back to live encode",
                name_.c_str());
    return std::nullopt;
  }
  auto ckpt = storage::read_artifact_chain_bytes(config_.checkpoint_path);
  if (!ckpt.is_ok()) return std::nullopt;
  const ValidationTs boundary = ckpt.value().meta.last_applied;
  const ValidationTs low_water = engine_ ? engine_->installed_low_water() : 0;
  if (boundary > low_water) {
    // Never serve a snapshot claiming more than the engine installed.
    return std::nullopt;
  }
  repl::JoinArtifacts artifacts;
  artifacts.boundary = boundary;
  if (low_water > boundary) {
    // Catch-up candidates: the surviving segments plus the writer's
    // in-memory tail; a collector reorderer dedups the overlap and orders
    // them. Dense coverage of (boundary, low_water] is proven by the
    // released floor reaching low_water — after a kMirror epoch the local
    // segments can have holes (records shipped to the mirror never hit
    // this disk), and then the live-encode path must take over.
    auto all = log::SegmentedLogStorage::read_all(config_.log_path);
    if (!all.is_ok()) return std::nullopt;
    ValidationTs released = boundary;
    log::Reorderer collector(
        [&](ValidationTs seq, TxnId, std::vector<log::Record> records) {
          released = seq;
          for (log::Record& r : records) {
            artifacts.catch_up.push_back(std::move(r));
          }
        },
        boundary + 1);
    collector.begin_batch();
    for (log::Record& r : all.value()) (void)collector.add(std::move(r));
    if (log_writer_) {
      auto tail = log_writer_->tail_since(boundary);
      collector.begin_batch();
      for (log::Record& r : tail) (void)collector.add(std::move(r));
    }
    if (released != low_water) {
      RODAIN_INFO(
          "%s: disk join artifacts cover to seq %llu < low water %llu; "
          "falling back to live encode",
          name_.c_str(), static_cast<unsigned long long>(released),
          static_cast<unsigned long long>(low_water));
      return std::nullopt;
    }
  }
  artifacts.checkpoint_bytes = std::move(ckpt.value().bytes);
  return artifacts;
}

Result<log::RecoveryStats> Node::recover_from_local_state() {
  std::lock_guard lock(commit_mu_);
  if (role_.load(std::memory_order_relaxed) != NodeRole::kDown) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "recover before starting a role");
  }
  // A recovering node is in an outage until a serving role closes it: the
  // window from here to the first post-restart commit is the restart
  // downtime the flight recorder reports.
  availability_.set_serving(false, clock_.now().us);
  const bool instant = config_.instant_recovery && config_.log_segment_bytes > 0;
  Result<log::RecoveryStats> stats = [&]() -> Result<log::RecoveryStats> {
    if (instant) {
      // Instant recovery (DESIGN.md §12): load the checkpoint, index the
      // surviving segments, and let start_primary serve immediately — first
      // touch replays on demand, the sweeper thread drains the rest.
      recovery_ = std::make_unique<log::RedoIndex>();
      return log::recover_instant_segments(config_.checkpoint_path,
                                           config_.log_path, store_, *recovery_,
                                           &index_);
    }
    return config_.log_segment_bytes > 0
               ? log::recover_checkpoint_and_segments(config_.checkpoint_path,
                                                      config_.log_path, store_,
                                                      &index_)
               : log::recover_checkpoint_and_log(
                     config_.checkpoint_path, config_.log_path, store_, &index_);
  }();
  if (instant) {
    if (!stats.is_ok() || !recovery_->active()) {
      // Error, or nothing to defer (empty log / checkpoint covers it all):
      // no recovery phase to run.
      recovery_.reset();
    } else {
      recovery_mode_.store(1, std::memory_order_release);
      obs::metrics().gauge("recovery.mode").set(1.0);
    }
  }
  if (stats.is_ok()) {
    // Opening the segmented log (in the constructor) already trimmed any
    // torn tail the crash left, so the replay above saw a clean directory;
    // fold the trim back into the stats the caller sees.
    stats.value().torn_tail |= log_tail_trimmed_;
    recovered_next_seq_ = stats.value().last_seq + 1;
    if (instant) {
      RODAIN_INFO(
          "%s: instant recovery ready (%llu txns deferred, next seq %llu)",
          name_.c_str(),
          static_cast<unsigned long long>(stats.value().deferred_txns),
          static_cast<unsigned long long>(recovered_next_seq_));
    } else {
      RODAIN_INFO("%s: local recovery done (%llu txns replayed, next seq %llu)",
                  name_.c_str(),
                  static_cast<unsigned long long>(stats.value().committed_applied),
                  static_cast<unsigned long long>(recovered_next_seq_));
    }
    if (obs::tracing_enabled()) {
      obs::tracer().record_instant(obs::Phase::kRecovery,
                                   stats.value().last_seq);
    }
  }
  return stats;
}

void Node::start_mirror(net::Channel& peer, ValidationTs expected_next) {
  std::unique_lock lock(commit_mu_);
  assert(role_.load(std::memory_order_relaxed) == NodeRole::kDown);
  peer_ = &peer;
  {
    std::lock_guard q(queue_mu_);
    stopping_.store(false, std::memory_order_relaxed);
  }
  guarded_channel_ = std::make_unique<GuardedChannel>(*this, peer);
  repl::MirrorService::Options options;
  options.store_to_disk = true;
  // Match the primary's commit width: a parallel-commit primary must not
  // outrun its own mirror's apply path (DESIGN.md §14).
  options.apply_workers = config_.worker_threads;
  options.on_synced = [this] { become_locked(NodeRole::kMirror); };
  options.on_abandoned = [this] { become_locked(NodeRole::kRecovering); };
  if (!config_.checkpoint_path.empty() &&
      config_.checkpoint_interval.is_positive()) {
    // Checkpoints ride the apply path: MirrorService polls the cadence and
    // truncates the stored log after each write (DESIGN.md §10).
    options.checkpoint_interval = config_.checkpoint_interval;
    options.write_checkpoint = [this](ValidationTs boundary) {
      return write_checkpoint_at_locked(boundary);
    };
  }
  if (recovery_ && recovery_->active()) {
    // The peer's stream supersedes whatever the local log still owed.
    recovery_->abandon();
    finish_recovery_locked("superseded by mirror role");
  }
  mirror_ = std::make_unique<repl::MirrorService>(store_, disk_.get(),
                                                  *guarded_channel_, clock_,
                                                  options, &index_);
  mirror_->attach_synced(expected_next);
  become_locked(NodeRole::kMirror);
  heartbeater_ = std::thread([this] { heartbeat_loop(); });
  start_sampler_locked();
}

void Node::start_rejoin(net::Channel& peer) {
  std::unique_lock lock(commit_mu_);
  assert(role_.load(std::memory_order_relaxed) == NodeRole::kDown);
  peer_ = &peer;
  {
    std::lock_guard q(queue_mu_);
    stopping_.store(false, std::memory_order_relaxed);
  }
  guarded_channel_ = std::make_unique<GuardedChannel>(*this, peer);
  repl::MirrorService::Options options;
  options.store_to_disk = true;
  options.apply_workers = config_.worker_threads;
  options.on_synced = [this] { become_locked(NodeRole::kMirror); };
  options.on_abandoned = [this] { become_locked(NodeRole::kRecovering); };
  if (!config_.checkpoint_path.empty() &&
      config_.checkpoint_interval.is_positive()) {
    // Checkpoints ride the apply path: MirrorService polls the cadence and
    // truncates the stored log after each write (DESIGN.md §10).
    options.checkpoint_interval = config_.checkpoint_interval;
    options.write_checkpoint = [this](ValidationTs boundary) {
      return write_checkpoint_at_locked(boundary);
    };
  }
  if (recovery_ && recovery_->active()) {
    // The snapshot about to install supersedes the local log's deferred
    // chains; applying them afterwards would clobber newer state.
    recovery_->abandon();
    finish_recovery_locked("superseded by snapshot rejoin");
  }
  mirror_ = std::make_unique<repl::MirrorService>(store_, disk_.get(),
                                                  *guarded_channel_, clock_,
                                                  options, &index_);
  become_locked(NodeRole::kRecovering);
  RODAIN_INFO("%s: rejoining via snapshot + catch-up", name_.c_str());
  mirror_->request_join(0);
  heartbeater_ = std::thread([this] { heartbeat_loop(); });
  start_sampler_locked();
}

void Node::take_over_locked() {
  if (role_.load(std::memory_order_relaxed) != NodeRole::kMirror || !mirror_) {
    return;
  }
  auto takeover = mirror_->take_over();
  // Sticky until restart: a stored-log write failure during the mirror
  // epoch means the disk may have holes, so join_artifacts_locked must
  // never vouch for dense catch-up coverage from it.
  mirror_disk_dense_ = mirror_->disk_log_dense();
  ++channel_epoch_;
  link_down_since_.reset();
  mirror_.reset();
  peer_ = nullptr;  // the old primary is gone; a rejoin brings a new channel
  guarded_channel_.reset();
  build_primary_locked(LogMode::kDirectDisk);
  engine_->set_next_validation_seq(takeover.next_seq);
  become_locked(NodeRole::kPrimaryAlone);
  if (workers_.empty()) {
    for (std::size_t i = 0; i < config_.worker_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    timer_ = std::thread([this] { timer_loop(); });
  }
}

void Node::stop() {
  {
    std::scoped_lock lock(commit_mu_, queue_mu_);
    if (stopping_.load(std::memory_order_relaxed) &&
        role_.load(std::memory_order_relaxed) == NodeRole::kDown) {
      return;
    }
    stopping_.store(true, std::memory_order_relaxed);
    become_locked(NodeRole::kDown);
    // Freeze the outage become_locked just opened: downtime accrual stops at
    // shutdown, but the outage stays reported as open (never re-served).
    availability_.close(clock_.now().us);
  }
  ready_cv_.notify_all();
  timer_cv_.notify_all();
  // Join BEFORE sweeping active_: a worker in the lock-free read phase holds
  // a raw Transaction pointer with no mutex, so the entries must outlive it.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (timer_.joinable()) timer_.join();
  if (heartbeater_.joinable()) heartbeater_.join();
  if (checkpointer_.joinable()) checkpointer_.join();
  if (sampler_.joinable()) sampler_.join();
  if (sweeper_.joinable()) sweeper_.join();
  std::vector<std::pair<DoneFn, CommitInfo>> callbacks;
  {
    std::scoped_lock lock(commit_mu_, queue_mu_);
    // In-flight transactions die with the node.
    for (auto& [id, a] : active_) {
      if (a.done) {
        CommitInfo info;
        info.outcome = TxnOutcome::kSystemAborted;
        callbacks.emplace_back(std::move(a.done), info);
      }
      ++counters_.system_aborted;
    }
    active_.clear();
    ready_.clear();
    deadlines_.clear();
    ++channel_epoch_;
    engine_.reset();
    replicator_.reset();
    mirror_.reset();
    log_writer_.reset();
    guarded_channel_.reset();
  }
  http_.reset();
  for (auto& [cb, info] : callbacks) cb(info);
}

// ------------------------------------------------------------ client ----

void Node::submit(txn::TxnProgram program, DoneFn done) {
  std::vector<std::pair<DoneFn, CommitInfo>> callbacks;
  {
    std::unique_lock lock(commit_mu_);
    ++counters_.submitted;
    nm().submitted.inc();
    const TimePoint now = clock_.now();
    CommitInfo info;
    if (!serving_locked()) {
      ++counters_.system_aborted;
      info.outcome = TxnOutcome::kSystemAborted;
      if (done) callbacks.emplace_back(std::move(done), info);
    } else if (!overload_.try_admit(now)) {
      ++counters_.overload_rejected;
      info.outcome = TxnOutcome::kOverloadRejected;
      if (done) callbacks.emplace_back(std::move(done), info);
    } else {
      const TxnId id = next_local_txn_++;
      const TimePoint deadline =
          program.criticality == Criticality::kNonRealTime
              ? TimePoint::max()
              : now + program.relative_deadline;
      Active a;
      a.txn = std::make_unique<txn::Transaction>(id, ++admission_seq_,
                                                 std::move(program), now, deadline);
      a.done = std::move(done);
      if (obs::enabled()) a.txn->stages.enter(obs::Stage::kAdmit, now.us);
      engine_->begin(*a.txn);
      if (deadline != TimePoint::max()) deadlines_.emplace(deadline, id);
      if (obs::enabled()) {
        // Admission work done; the clock ticks in kQueueWait until a worker
        // picks the transaction up (step_read_phase stamps kReadPhase).
        a.txn->stages.enter(obs::Stage::kQueueWait, clock_.now().us);
      }
      {
        std::lock_guard q(queue_mu_);
        active_.emplace(id, std::move(a));
      }
      push_ready(id);
    }
  }
  timer_cv_.notify_one();
  for (auto& [cb, info] : callbacks) cb(info);
}

CommitInfo Node::execute(txn::TxnProgram program) {
  std::promise<CommitInfo> promise;
  auto future = promise.get_future();
  submit(std::move(program),
         [&promise](const CommitInfo& info) { promise.set_value(info); });
  return future.get();
}

Result<storage::Value> Node::get(ObjectId oid) {
  txn::TxnProgram program;
  program.read(oid);
  program.relative_deadline = Duration::seconds(5);
  const CommitInfo info = execute(std::move(program));
  if (info.outcome != TxnOutcome::kCommitted) {
    return Status::error(ErrorCode::kAborted, "read transaction aborted");
  }
  std::lock_guard lock(commit_mu_);
  if (engine_ && engine_->parallel_commit()) {
    // Committers install outside commit_mu_: read through the seqlock; on
    // contention exclude the installer via its write-intent stripe and
    // retry once (the stripe holder cannot be mid-install afterwards).
    storage::ObjectRecord snap;
    std::uint32_t retries = 0;
    storage::OptimisticRead r = store_.read_optimistic(oid, snap, retries);
    if (retries != 0) read_retry_counter().inc(retries);
    if (r == storage::OptimisticRead::kContended) {
      const auto intent = engine_->intents().acquire_one(oid);
      retries = 0;
      r = store_.read_optimistic(oid, snap, retries);
    }
    if (r != storage::OptimisticRead::kHit || snap.deleted) {
      return Status::error(ErrorCode::kNotFound, "no such object");
    }
    return std::move(snap.value);
  }
  const storage::ObjectRecord* rec = store_.find(oid);
  if (!rec) return Status::error(ErrorCode::kNotFound, "no such object");
  return rec->value;
}

Result<storage::Value> Node::read_committed(ObjectId oid) {
  if (!serving()) {
    return Status::error(ErrorCode::kUnavailable, "not serving");
  }
  // serving() ordered the role_ acquire before this: recovery_ was set (if
  // at all) before the node started serving and is never re-assigned until
  // the destructor, so the unlocked pointer read is safe. While the index
  // is active the store may lack deferred commits for this object; the
  // transactional fallback path replays them on first touch.
  if (recovery_ && recovery_->active()) {
    return Status::error(ErrorCode::kUnavailable, "instant recovery draining");
  }
  storage::ObjectRecord snap;
  std::uint32_t retries = 0;
  const storage::OptimisticRead r = store_.read_optimistic(oid, snap, retries);
  if (retries != 0) read_retry_counter().inc(retries);
  if (r == storage::OptimisticRead::kContended) {
    return Status::error(ErrorCode::kUnavailable, "seqlock contention");
  }
  // Re-check the role AFTER the snapshot: a takeover/demotion that raced the
  // read invalidates it (the value may predate the new primary's installs).
  if (!serving()) {
    return Status::error(ErrorCode::kUnavailable, "not serving");
  }
  if (r == storage::OptimisticRead::kMiss || snap.deleted) {
    return Status::error(ErrorCode::kNotFound, "no such object");
  }
  return std::move(snap.value);
}

// ------------------------------------------------------------ workers ---

void Node::push_ready(TxnId id) {
  std::lock_guard q(queue_mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  Active& a = it->second;
  if (a.owned_by_worker) {
    // The owner worker is driving it right now; it re-checks this flag at
    // its next park point (under commit_mu_ + queue_mu_, both held by every
    // caller of this path, so the handshake cannot be missed).
    a.resume_pending = true;
    return;
  }
  ready_.emplace(a.txn->priority(), id);
  ready_cv_.notify_one();
}

void Node::lock_commit(std::unique_lock<std::mutex>& lock) {
  assert(lock.mutex() == &commit_mu_ && !lock.owns_lock());
  if (lock.try_lock()) return;
  obs::ScopedTimer wait(nm().commit_mu_wait);
  lock.lock();
}

void Node::worker_loop() {
  std::unique_lock qlock(queue_mu_);
  while (true) {
    ready_cv_.wait(qlock, [this] {
      return stopping_.load(std::memory_order_relaxed) || !ready_.empty();
    });
    if (stopping_.load(std::memory_order_relaxed)) return;
    const TxnId id = ready_.begin()->second;
    ready_.erase(ready_.begin());
    drive(id, qlock);
  }
}

void Node::drive(TxnId id, std::unique_lock<std::mutex>& qlock) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  it->second.owned_by_worker = true;
  // The entry (and the Transaction it owns) is stable while owned: only
  // finish_locked (called by this worker) or stop() — which joins workers
  // before sweeping — erases it.
  txn::Transaction* t = it->second.txn.get();
  qlock.unlock();

  std::vector<std::pair<DoneFn, CommitInfo>> callbacks;
  std::unique_lock commit(commit_mu_, std::defer_lock);
  // While true, t->lock_free_executing() is set and commit_mu_ is released:
  // the worker streams read-phase steps against seqlock snapshots while
  // other workers validate/install. Victimizers see the flag (they hold
  // commit_mu_) and defer the restart; we consume it at the next step.
  bool unlocked_reads = false;
  bool done = false;
  while (!done) {
    const bool want_unlocked = engine_->lock_free_reads() &&
                               t->phase() == txn::Phase::kReadPhase &&
                               !t->program_done();
    if (want_unlocked && !unlocked_reads) {
      if (!commit.owns_lock()) lock_commit(commit);
      if (stopping_.load(std::memory_order_relaxed)) break;
      // Flag flips happen only under commit_mu_, so a victimizer can never
      // observe a half-entered lock-free section.
      t->set_lock_free_executing(true);
      unlocked_reads = true;
      commit.unlock();
    }
    if (unlocked_reads) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (std::optional<engine::StepResult> r = engine_->step_read_unlocked(*t)) {
        if (r->cost.is_positive() &&
            config_.engine.costs.per_read.is_positive()) {
          // Optional fidelity mode: burn the modelled CPU cost for real
          // (outside every lock — that is the whole point).
          const TimePoint until = clock_.now() + r->cost;
          while (clock_.now() < until) {
          }
        }
        continue;
      }
      if (t->phase() == txn::Phase::kReadPhase && t->program_done() &&
          engine_->parallel_commit_active()) {
        // Parallel commit (DESIGN.md §13): validate + install WITHOUT
        // commit_mu_ — per-record write intents and the engine's validation
        // mutex serialize what must be serial. Clearing the flag needs no
        // mutex here: with the parallel path compiled in, victimizers
        // always defer instead of reading lock_free_executing
        // (Engine::restart_victims).
        t->set_lock_free_executing(false);
        unlocked_reads = false;
        const engine::StepResult pr = engine_->step_commit_unlocked(*t);
        if (pr.cost.is_positive() &&
            config_.engine.costs.per_read.is_positive()) {
          const TimePoint until = clock_.now() + pr.cost;
          while (clock_.now() < until) {
          }
        }
        if (pr.action == engine::StepAction::kRestarted) continue;
        // Seal under commit_mu_: the buffered redo entry (and any peers'
        // below the dense edge) joins the globally seq-ordered stream the
        // LogWriter sees; kOff durables fire inside this call.
        lock_commit(commit);
        engine_->seal_epoch();
        if (stopping_.load(std::memory_order_relaxed)) break;
        if (pr.action == engine::StepAction::kAborted) {
          finish_locked(id, t->outcome(), callbacks);
          done = true;
          continue;
        }
        // kWaitLogAck: park unless the durable callback (inline kOff seal,
        // or a mirror/disk ack raced ahead) already resumed us.
        {
          std::lock_guard q(queue_mu_);
          auto it2 = active_.find(id);
          if (it2 == active_.end()) {
            done = true;
          } else if (it2->second.resume_pending) {
            it2->second.resume_pending = false;
          } else {
            it2->second.owned_by_worker = false;
            done = true;
          }
        }
        continue;
      }
      // The next step must run serially: validation is up (with the
      // parallel path inactive — recovery drain), a deferred victim-restart
      // is pending, or the optimistic read hit contention.
      lock_commit(commit);
      t->set_lock_free_executing(false);
      unlocked_reads = false;
      if (stopping_.load(std::memory_order_relaxed)) break;
    } else if (!commit.owns_lock()) {
      lock_commit(commit);
      if (stopping_.load(std::memory_order_relaxed)) break;
    }
    const engine::StepResult r = engine_->step(*t);
    if (r.cost.is_positive() && config_.engine.costs.per_read.is_positive()) {
      // Optional fidelity mode: burn the modelled CPU cost for real.
      const TimePoint until = clock_.now() + r.cost;
      while (clock_.now() < until) {
      }
    }
    switch (r.action) {
      case engine::StepAction::kContinue:
      case engine::StepAction::kRestarted:
        continue;
      case engine::StepAction::kBlocked:
      case engine::StepAction::kWaitLogAck: {
        // Every resume path (lock grant, log ack, victim restart) runs under
        // commit_mu_, which we hold: checking resume_pending and parking are
        // one atomic decision — the historical re-check race is gone.
        std::lock_guard q(queue_mu_);
        auto it2 = active_.find(id);
        if (it2 == active_.end()) {
          done = true;
          break;
        }
        if (it2->second.resume_pending) {
          it2->second.resume_pending = false;
          continue;  // the grant/ack already arrived
        }
        it2->second.owned_by_worker = false;
        done = true;
        break;
      }
      case engine::StepAction::kCommitted:
        finish_locked(id, TxnOutcome::kCommitted, callbacks);
        done = true;
        break;
      case engine::StepAction::kAborted:
        finish_locked(id, t->outcome(), callbacks);
        done = true;
        break;
    }
  }
  if (unlocked_reads) {
    // Shutdown path: clear the flag under commit_mu_ so the sweep in stop()
    // never sees a phantom lock-free owner.
    if (!commit.owns_lock()) lock_commit(commit);
    t->set_lock_free_executing(false);
  }
  if (commit.owns_lock()) commit.unlock();
  for (auto& [cb, info] : callbacks) cb(info);
  qlock.lock();
}

void Node::finish_locked(TxnId id, TxnOutcome outcome,
                         std::vector<std::pair<DoneFn, CommitInfo>>& callbacks) {
  Active a;
  {
    std::lock_guard q(queue_mu_);
    auto it = active_.find(id);
    if (it == active_.end()) return;
    a = std::move(it->second);
    active_.erase(it);
  }
  overload_.on_finish();

  const TimePoint now = clock_.now();
  CommitInfo info;
  info.latency = now - a.txn->arrival();
  info.restarts = a.txn->restarts();
  info.late = a.late;
  info.captured_reads = std::move(a.txn->captured_reads);
  counters_.restarts += static_cast<std::uint64_t>(a.txn->restarts());

  if (obs::enabled()) {
    obs::observe_stages(a.txn->stages, now.us);
    const bool missed = (outcome == TxnOutcome::kCommitted && a.late) ||
                        outcome == TxnOutcome::kMissedDeadline;
    if (missed && a.txn->deadline() != TimePoint::max()) {
      // Charge the miss to the lifecycle stage that exhausted the slack.
      obs::charge_deadline_miss(a.txn->stages,
                                (a.txn->deadline() - a.txn->arrival()).us,
                                now.us);
    }
  }
  if (outcome == TxnOutcome::kCommitted) availability_.on_commit(now.us);

  if (outcome == TxnOutcome::kCommitted && a.late) {
    ++counters_.missed_deadline;
    nm().missed_deadline.inc();
    overload_.on_deadline_miss(now);
  } else {
    switch (outcome) {
      case TxnOutcome::kCommitted:
        ++counters_.committed;
        commit_latency_.add(info.latency);
        nm().committed.inc();
        nm().commit_latency.observe(info.latency);
        break;
      case TxnOutcome::kMissedDeadline:
        ++counters_.missed_deadline;
        nm().missed_deadline.inc();
        overload_.on_deadline_miss(now);
        break;
      case TxnOutcome::kOverloadRejected:
        ++counters_.overload_rejected;
        break;
      case TxnOutcome::kConflictAborted:
        ++counters_.conflict_aborted;
        nm().conflict_aborted.inc();
        break;
      case TxnOutcome::kSystemAborted:
        ++counters_.system_aborted;
        nm().system_aborted.inc();
        break;
    }
  }
  info.outcome = outcome;
  if (a.done) callbacks.emplace_back(std::move(a.done), info);
}

// -------------------------------------------------------------- timers ---

void Node::timer_loop() {
  std::unique_lock lock(commit_mu_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Wake for whichever comes first: the next txn deadline or a pending
    // group-commit flush.
    std::optional<TimePoint> next;
    if (!deadlines_.empty()) next = deadlines_.begin()->first;
    if (log_flush_at_ && (!next || *log_flush_at_ < *next)) {
      next = *log_flush_at_;
    }
    if (!next) {
      timer_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) ||
               !deadlines_.empty() || log_flush_at_.has_value();
      });
      continue;
    }
    const TimePoint now = clock_.now();
    if (now < *next) {
      timer_cv_.wait_for(lock, std::chrono::microseconds((*next - now).us));
      continue;
    }
    if (log_flush_at_ && clock_.now() >= *log_flush_at_) {
      log_flush_at_.reset();
      // flush_batch may re-arm via the schedule hook (sets log_flush_at_).
      if (log_writer_) log_writer_->flush_batch();
    }
    std::vector<std::pair<DoneFn, CommitInfo>> callbacks;
    while (!deadlines_.empty() && deadlines_.begin()->first <= clock_.now()) {
      const TxnId id = deadlines_.begin()->second;
      deadlines_.erase(deadlines_.begin());
      txn::Transaction* expired = nullptr;
      {
        std::lock_guard q(queue_mu_);
        auto it = active_.find(id);
        if (it == active_.end()) continue;
        Active& a = it->second;
        // Ownership first: a parallel-commit owner mutates the phase with
        // neither node mutex held, so can_abort (which reads it) may only
        // run on unowned entries — those quiesced their phase writes before
        // releasing ownership under queue_mu_.
        if (!a.owned_by_worker &&
            a.txn->criticality() == Criticality::kFirm &&
            engine_->can_abort(*a.txn)) {
          // Not owned: no worker can pick it up once it leaves ready_
          // (push_ready callers hold commit_mu_, which we hold).
          ready_.erase({a.txn->priority(), id});
          expired = a.txn.get();
        } else {
          // Soft deadline, running, or already validated: it completes late.
          a.late = true;
        }
      }
      if (expired) {
        engine_->abort(*expired, TxnOutcome::kMissedDeadline);
        finish_locked(id, TxnOutcome::kMissedDeadline, callbacks);
      }
    }
    if (!callbacks.empty()) {
      lock.unlock();
      for (auto& [cb, info] : callbacks) cb(info);
      lock.lock();
    }
  }
}

// ---------------------------------------------------------- heartbeats ---

void Node::heartbeat_loop() {
  std::unique_lock lock(commit_mu_);
  const repl::Watchdog watchdog(config_.watchdog_timeout);
  while (!stopping_.load(std::memory_order_relaxed)) {
    timer_cv_.wait_for(
        lock, std::chrono::microseconds(config_.heartbeat_interval.us));
    if (stopping_.load(std::memory_order_relaxed)) return;
    switch (role_.load(std::memory_order_relaxed)) {
      case NodeRole::kPrimaryWithMirror:
        if (replicator_) {
          replicator_->send_heartbeat(
              role(), engine_ ? engine_->installed_low_water() : 0);
          replicator_->poll(clock_.now());
          if (link_down_since_ && replicator_->channel_connected()) {
            link_down_since_.reset();
          }
          if (link_down_since_ &&
              clock_.now() - *link_down_since_ > config_.disconnect_grace) {
            escalate_mirror_lost_locked("disconnect grace expired");
            break;
          }
          if (log_writer_ && log_writer_->check_ack_timeouts()) break;
          if (role_.load(std::memory_order_relaxed) ==
                  NodeRole::kPrimaryWithMirror &&
              watchdog.expired(clock_.now(), replicator_->last_heard())) {
            RODAIN_INFO("%s: watchdog expired for mirror", name_.c_str());
            escalate_mirror_lost_locked("watchdog expired");
          }
        }
        break;
      case NodeRole::kPrimaryAlone:
        if (replicator_) {
          replicator_->send_heartbeat(
              role(), engine_ ? engine_->installed_low_water() : 0);
          replicator_->poll(clock_.now());
        }
        break;
      case NodeRole::kMirror:
        if (mirror_) {
          mirror_->send_heartbeat();
          mirror_->poll(clock_.now());
          if (watchdog.expired(clock_.now(), mirror_->last_heard())) {
            RODAIN_INFO("%s: watchdog expired for primary, taking over",
                        name_.c_str());
            if (obs::tracing_enabled()) {
              obs::tracer().record_instant(obs::Phase::kPrimaryFailure, 0);
            }
            obs::metrics().counter("node.takeovers").inc();
            take_over_locked();
          }
        }
        break;
      case NodeRole::kRecovering:
        // Keep the primary's watchdog fed while the snapshot installs, and
        // drive the join retry/chunk-retry machinery.
        if (mirror_) {
          mirror_->send_heartbeat();
          mirror_->poll(clock_.now());
        }
        break;
      case NodeRole::kDown:
        break;
    }
  }
}

// ------------------------------------------------------------ telemetry --

TxnCounters Node::counters() const {
  std::lock_guard lock(commit_mu_);
  return counters_;
}

LatencyHistogram Node::commit_latency() const {
  std::lock_guard lock(commit_mu_);
  return commit_latency_;
}

ValidationTs Node::mirror_applied_seq() const {
  std::lock_guard lock(commit_mu_);
  return mirror_ ? mirror_->applied_seq() : 0;
}

obs::TimeSeries Node::metrics_series() const {
  std::lock_guard lock(commit_mu_);
  return series_;
}

obs::AvailabilityTimeline Node::availability() const {
  std::lock_guard lock(commit_mu_);
  return availability_;
}

std::uint16_t Node::http_port() const { return http_ ? http_->port() : 0; }

}  // namespace rodain::rt
