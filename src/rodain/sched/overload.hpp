// Overload management (paper §2):
//
//   "To handle occasional system overload situations the scheduler can limit
//    the number of active transactions in the database system. We use the
//    number of transactions that have missed their deadlines within the
//    observation period as the indication of the current system load level."
//
// Concretely: at most `max_active` transactions are in the system at once
// (50 in the paper's experiments); when the limit is reached an arriving
// lower-priority transaction is aborted. On top of that, a sliding window
// of deadline misses shrinks the effective cap under sustained overload and
// lets it recover when misses subside.
#pragma once

#include <cstddef>
#include <deque>

#include "rodain/common/time.hpp"
#include "rodain/common/types.hpp"

namespace rodain::sched {

struct OverloadConfig {
  std::size_t max_active{50};
  /// Miss-window feedback (set false for the bare fixed-cap policy).
  bool miss_feedback{true};
  Duration observation_window{Duration::seconds(1)};
  /// Misses inside the window beyond which the cap starts shrinking.
  std::size_t miss_threshold{25};
  /// The cap never shrinks below this.
  std::size_t min_cap{8};
  /// When the cap is reached and the arrival outranks the lowest-priority
  /// abortable active transaction, shed that one instead of the arrival
  /// (the paper sheds "an arriving LOWER priority transaction" — a higher
  /// priority arrival displaces). Off by default: the paper's measured
  /// policy is plain rejection.
  bool displace_on_admission{false};
};

class OverloadManager {
 public:
  explicit OverloadManager(OverloadConfig config) : config_(config) {}

  /// Admission decision for an arriving transaction. On success the
  /// transaction counts as active until on_finish().
  [[nodiscard]] bool try_admit(TimePoint now);

  /// A transaction left the system (any outcome).
  void on_finish();

  /// A transaction missed its deadline — load-level evidence.
  void on_deadline_miss(TimePoint now);

  [[nodiscard]] std::size_t active() const { return active_; }
  /// The cap currently in force (≤ max_active under feedback pressure).
  [[nodiscard]] std::size_t effective_cap(TimePoint now);
  [[nodiscard]] std::size_t recent_misses(TimePoint now);

 private:
  void prune(TimePoint now);

  OverloadConfig config_;
  std::size_t active_{0};
  std::deque<TimePoint> misses_;  // miss times inside the window
};

}  // namespace rodain::sched
