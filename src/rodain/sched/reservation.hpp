// Demand-based CPU reservation for non-real-time transactions (paper §2):
//
//   "Without deadlines the non-realtime transactions get the execution turn
//    only when the system has no real-time transaction ready ... They are
//    likely to suffer from starvation. We avoid this by reserving a fixed
//    fraction of execution time for the non-realtime transactions. The
//    reservation is made on a demand basis."
//
// The driver consults this accountant before dispatching a non-RT step:
// while non-RT work is pending and its share of consumed CPU is below the
// reserved fraction, the step is boosted above the real-time queue.
#pragma once

#include "rodain/common/time.hpp"
#include "rodain/common/types.hpp"

namespace rodain::sched {

class NonRtReservation {
 public:
  /// `fraction` of total CPU reserved for non-RT work, e.g. 0.1.
  explicit NonRtReservation(double fraction) : fraction_(fraction) {}

  /// Record CPU consumed by a step that just ran.
  void charge(Criticality crit, Duration cpu) {
    total_ += cpu;
    if (crit == Criticality::kNonRealTime) non_rt_ += cpu;
  }

  /// Should the next non-RT step be boosted above real-time work?
  /// (Only meaningful "on demand": call it when non-RT work is pending.)
  [[nodiscard]] bool should_boost() const {
    if (fraction_ <= 0.0) return false;
    if (total_.is_zero()) return true;
    return static_cast<double>(non_rt_.us) <
           fraction_ * static_cast<double>(total_.us);
  }

  /// The priority a boosted non-RT step runs at: above every deadline.
  [[nodiscard]] static PriorityKey boost_key(std::uint64_t seq) {
    return PriorityKey{Criticality::kFirm, TimePoint::origin(), seq};
  }

  [[nodiscard]] Duration non_rt_served() const { return non_rt_; }
  [[nodiscard]] Duration total_served() const { return total_; }
  [[nodiscard]] double fraction() const { return fraction_; }

 private:
  double fraction_;
  Duration non_rt_{Duration::zero()};
  Duration total_{Duration::zero()};
};

}  // namespace rodain::sched
