#include "rodain/sched/overload.hpp"

#include <algorithm>

#include "rodain/obs/obs.hpp"

namespace rodain::sched {

namespace {
struct SchedMetrics {
  obs::Counter& admitted = obs::metrics().counter("sched.admitted");
  obs::Counter& rejected = obs::metrics().counter("sched.overload_rejected");
  obs::Counter& deadline_misses =
      obs::metrics().counter("sched.deadline_misses");
  obs::Gauge& active = obs::metrics().gauge("sched.active");
  obs::Gauge& effective_cap = obs::metrics().gauge("sched.effective_cap");
};
SchedMetrics& sm() {
  static SchedMetrics m;
  return m;
}
}  // namespace

void OverloadManager::prune(TimePoint now) {
  const TimePoint horizon = now - config_.observation_window;
  while (!misses_.empty() && misses_.front() < horizon) misses_.pop_front();
}

std::size_t OverloadManager::recent_misses(TimePoint now) {
  prune(now);
  return misses_.size();
}

std::size_t OverloadManager::effective_cap(TimePoint now) {
  if (!config_.miss_feedback) return config_.max_active;
  prune(now);
  if (misses_.size() <= config_.miss_threshold) return config_.max_active;
  // Each miss beyond the threshold sheds one admission slot.
  const std::size_t excess = misses_.size() - config_.miss_threshold;
  const std::size_t cap =
      config_.max_active > excess ? config_.max_active - excess : 0;
  return std::max(cap, config_.min_cap);
}

bool OverloadManager::try_admit(TimePoint now) {
  const std::size_t cap = effective_cap(now);
  sm().effective_cap.set(static_cast<double>(cap));
  if (active_ >= cap) {
    sm().rejected.inc();
    return false;
  }
  ++active_;
  sm().admitted.inc();
  sm().active.set(static_cast<double>(active_));
  return true;
}

void OverloadManager::on_finish() {
  if (active_ > 0) --active_;
  sm().active.set(static_cast<double>(active_));
}

void OverloadManager::on_deadline_miss(TimePoint now) {
  misses_.push_back(now);
  sm().deadline_misses.inc();
}

}  // namespace rodain::sched
