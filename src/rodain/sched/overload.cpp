#include "rodain/sched/overload.hpp"

#include <algorithm>

namespace rodain::sched {

void OverloadManager::prune(TimePoint now) {
  const TimePoint horizon = now - config_.observation_window;
  while (!misses_.empty() && misses_.front() < horizon) misses_.pop_front();
}

std::size_t OverloadManager::recent_misses(TimePoint now) {
  prune(now);
  return misses_.size();
}

std::size_t OverloadManager::effective_cap(TimePoint now) {
  if (!config_.miss_feedback) return config_.max_active;
  prune(now);
  if (misses_.size() <= config_.miss_threshold) return config_.max_active;
  // Each miss beyond the threshold sheds one admission slot.
  const std::size_t excess = misses_.size() - config_.miss_threshold;
  const std::size_t cap =
      config_.max_active > excess ? config_.max_active - excess : 0;
  return std::max(cap, config_.min_cap);
}

bool OverloadManager::try_admit(TimePoint now) {
  if (active_ >= effective_cap(now)) return false;
  ++active_;
  return true;
}

void OverloadManager::on_finish() {
  if (active_ > 0) --active_;
}

void OverloadManager::on_deadline_miss(TimePoint now) {
  misses_.push_back(now);
}

}  // namespace rodain::sched
