// Microbenchmark: full transactions through the real engine (storage +
// OCC validation + deferred writes + log emission), wall-clock throughput
// of the passive core on this machine.
#include <benchmark/benchmark.h>

#include "rodain/engine/engine.hpp"
#include "rodain/workload/calibration.hpp"

using namespace rodain;

namespace {

struct Fixture {
  storage::ObjectStore store{30000};
  storage::BPlusTree index;
  log::MemoryLogStorage disk;
  log::LogWriter writer{LogMode::kOff, &disk, nullptr};
  std::unique_ptr<engine::Engine> eng;

  explicit Fixture(cc::Protocol protocol) {
    workload::DatabaseConfig db;
    db.num_objects = 30000;
    workload::load_database(db, store, index);
    engine::EngineConfig config;
    config.protocol = protocol;
    config.costs = engine::CostModel::zero();
    eng = std::make_unique<engine::Engine>(config, store, &index, writer,
                                           engine::Engine::Hooks{});
  }

  TxnOutcome run(const txn::TxnProgram& program, TxnId id) {
    txn::Transaction t(id, id, program, TimePoint::origin(), TimePoint::max());
    eng->begin(t);
    while (true) {
      auto r = eng->step(t);
      switch (r.action) {
        case engine::StepAction::kContinue:
        case engine::StepAction::kRestarted:
        case engine::StepAction::kWaitLogAck:  // kOff acks inline
          continue;
        case engine::StepAction::kCommitted:
          return TxnOutcome::kCommitted;
        case engine::StepAction::kAborted:
          return t.outcome();
        case engine::StepAction::kBlocked:
          return TxnOutcome::kSystemAborted;  // cannot happen single-threaded
      }
    }
  }
};

void BM_EngineReadTxn(benchmark::State& state) {
  Fixture fixture(cc::Protocol::kOccDati);
  workload::DatabaseConfig db;
  db.num_objects = 30000;
  workload::TxnGenerator generator(db, workload::PaperSetup::workload(0.0), Rng(1));
  TxnId id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.run(generator.next(), id++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineReadTxn);

void BM_EngineUpdateTxn(benchmark::State& state) {
  Fixture fixture(cc::Protocol::kOccDati);
  workload::DatabaseConfig db;
  db.num_objects = 30000;
  workload::TxnGenerator generator(db, workload::PaperSetup::workload(1.0), Rng(2));
  TxnId id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.run(generator.next(), id++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineUpdateTxn);

void BM_EngineUpdateTxn2PL(benchmark::State& state) {
  Fixture fixture(cc::Protocol::kTwoPlHp);
  workload::DatabaseConfig db;
  db.num_objects = 30000;
  workload::TxnGenerator generator(db, workload::PaperSetup::workload(1.0), Rng(3));
  TxnId id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.run(generator.next(), id++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineUpdateTxn2PL);

}  // namespace
