// Microbenchmarks: redo-record codec, CRC, reordering, recovery replay.
#include <benchmark/benchmark.h>

#include "rodain/common/rng.hpp"
#include "rodain/log/record.hpp"
#include "rodain/log/recovery.hpp"
#include "rodain/cc/controller.hpp"
#include "rodain/log/reorder.hpp"

using namespace rodain;

namespace {

log::Record sample_write(TxnId txn = 7) {
  storage::Value v{std::string_view{"routing-update-payload-0123456789abcdef", 40}};
  return log::Record::write_image(txn, 12345, v);
}

void BM_RecordEncode(benchmark::State& state) {
  const log::Record r = sample_write();
  for (auto _ : state) {
    ByteWriter w(128);
    log::encode_record(r, w);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordEncode);

void BM_RecordDecode(benchmark::State& state) {
  ByteWriter w;
  log::encode_record(sample_write(), w);
  for (auto _ : state) {
    ByteReader reader(w.view());
    log::Record out;
    auto d = log::decode_record(reader, out);
    benchmark::DoNotOptimize(d.status.is_ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordDecode);

void BM_Crc32c(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_ReordererInOrder(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<log::Record> stream;
    for (ValidationTs seq = 1; seq <= 1000; ++seq) {
      stream.push_back(sample_write(seq));
      stream.push_back(log::Record::commit(seq, seq, seq * cc::kTsSpacing, 1));
    }
    std::size_t released = 0;
    log::Reorderer reorderer(
        [&](ValidationTs, TxnId, std::vector<log::Record>) { ++released; });
    state.ResumeTiming();
    for (auto& r : stream) (void)reorderer.add(std::move(r));
    benchmark::DoNotOptimize(released);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ReordererInOrder);

void BM_ReordererShuffled(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    // Batches arrive with bounded skew 16.
    std::vector<std::vector<log::Record>> batches;
    for (ValidationTs seq = 1; seq <= 1000; ++seq) {
      std::vector<log::Record> b;
      b.push_back(sample_write(seq));
      b.push_back(log::Record::commit(seq, seq, seq * cc::kTsSpacing, 1));
      batches.push_back(std::move(b));
    }
    Rng rng(state.iterations());
    for (std::size_t i = 0; i + 1 < batches.size(); ++i) {
      std::size_t j = i + rng.next_below(std::min<std::size_t>(17, batches.size() - i));
      std::swap(batches[i], batches[j]);
    }
    std::size_t released = 0;
    log::Reorderer reorderer(
        [&](ValidationTs, TxnId, std::vector<log::Record>) { ++released; });
    state.ResumeTiming();
    for (auto& b : batches) {
      for (auto& r : b) (void)reorderer.add(std::move(r));
    }
    benchmark::DoNotOptimize(released);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ReordererShuffled);

void BM_RecoveryReplay(benchmark::State& state) {
  const auto txns = static_cast<ValidationTs>(state.range(0));
  std::vector<log::Record> records;
  Rng rng(11);
  for (ValidationTs seq = 1; seq <= txns; ++seq) {
    const ObjectId oid = rng.next_below(10000);
    records.push_back(sample_write(seq));
    records.back().oid = oid;
    records.push_back(log::Record::commit(seq, seq, seq * cc::kTsSpacing, 1));
  }
  for (auto _ : state) {
    storage::ObjectStore store(10000);
    auto stats = log::replay_records(records, store);
    benchmark::DoNotOptimize(stats.is_ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecoveryReplay)->Arg(1000)->Arg(10000);

}  // namespace
