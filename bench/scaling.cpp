// Multicore scaling of the primary (DESIGN.md §11, §13): sweep the worker
// count 1 -> 8 over the paper's number-translation workload and report
// committed throughput, commit latency tails, seqlock retries, reader
// fences and commit-mutex wait per point. Two mixes per sweep: the paper's
// read-heavy service-provision mix (lock-free read phase: 4 workers carry
// at least 2x the committed throughput of 1) and a write-heavy mix that
// exercises the parallel commit path — per-worker redo buffers and the
// epoch sealer keep lock_wait_ms flat where the serial funnel grew it.
//
// A third sweep covers the other end of the wire (DESIGN.md §14): the
// mirror's epoch-parallel apply at widths 1/2/4 over a write-heavy redo
// stream. The virtual-time half proves the ack-floor lag stays bounded
// (apply_lag_max) and the wave accounting is width-independent
// (apply_parallelism, conflict_cuts); the wall-clock half measures the raw
// ApplyPool drain rate on real threads.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rodain/common/stats.hpp"
#include "rodain/exp/args.hpp"
#include "rodain/exp/report.hpp"
#include "rodain/net/sim_link.hpp"
#include "rodain/obs/obs.hpp"
#include "rodain/repl/apply_pool.hpp"
#include "rodain/repl/mirror.hpp"
#include "rodain/repl/primary.hpp"
#include "rodain/rt/node.hpp"
#include "rodain/workload/number_translation.hpp"

using namespace rodain;

namespace {

struct Mix {
  const char* name;          // report-label prefix ("" = legacy read-heavy)
  double write_fraction;
  std::size_t reads_per_txn;
  std::size_t updates_per_txn;
};

struct SweepPoint {
  std::size_t workers{0};
  std::uint64_t committed{0};
  std::uint64_t submitted{0};
  double seconds{0};
  double tps{0};
  LatencyHistogram latency;
  std::uint64_t seqlock_retries{0};
  std::uint64_t rehash_fences{0};
  double lock_wait_ms{0};
  std::uint64_t epoch_seals{0};
  std::uint64_t intent_conflicts{0};
};

double timer_total_ms(const LatencyHistogram& h) {
  return h.mean().to_ms() * static_cast<double>(h.count());
}

SweepPoint run_point(std::size_t workers, const Mix& mix,
                     const exp::BenchArgs& args) {
  workload::DatabaseConfig dbc;
  dbc.num_objects = std::min<std::size_t>(30000, std::max<std::size_t>(
                                                     args.txns * 4, 2000));
  workload::WorkloadConfig wlc;
  wlc.write_fraction = mix.write_fraction;
  wlc.reads_per_txn = mix.reads_per_txn;
  wlc.updates_per_txn = mix.updates_per_txn;
  // Throughput sweep, not a deadline experiment: give every transaction
  // room so the miss path never confounds the scaling signal.
  wlc.read_deadline = Duration::seconds(30);
  wlc.write_deadline = Duration::seconds(30);

  rt::NodeConfig config;
  config.worker_threads = workers;  // explicit: overrides any RODAIN_WORKERS
  config.overload.max_active = 100000;
  config.store_capacity_hint = dbc.num_objects * 2;
  rt::Node node(config, "scaling");
  workload::load_database(dbc, node.store(), node.index());
  node.start_primary(LogMode::kOff);

  obs::Counter& retries = obs::metrics().counter("engine.read_retries");
  obs::Counter& fences = obs::metrics().counter("store.rehash_fences");
  obs::Timer& mu_wait = obs::metrics().timer("node.commit_mu_wait");
  obs::Counter& seals = obs::metrics().counter("node.epoch_seals");
  obs::Counter& conflicts = obs::metrics().counter("engine.intent_conflicts");
  const std::uint64_t retries0 = retries.value();
  const std::uint64_t fences0 = fences.value();
  const double wait0_ms = timer_total_ms(mu_wait.merged());
  const std::uint64_t seals0 = seals.value();
  const std::uint64_t conflicts0 = conflicts.value();

  // Closed loop: 2 clients per worker keep every worker fed without the
  // open-loop overload machinery entering the picture.
  const std::size_t clients = std::max<std::size_t>(workers * 2, 2);
  const std::size_t per_client = std::max<std::size_t>(args.txns / clients, 1);
  std::mutex merge_mu;
  LatencyHistogram latency;
  std::uint64_t committed = 0;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      workload::TxnGenerator gen(dbc, wlc, Rng(args.seed + 1000 * c + 1));
      LatencyHistogram local;
      std::uint64_t ok = 0;
      for (std::size_t i = 0; i < per_client; ++i) {
        const rt::CommitInfo info = node.execute(gen.next());
        if (info.outcome == TxnOutcome::kCommitted) {
          ++ok;
          local.add(info.latency);
        }
      }
      std::lock_guard lock(merge_mu);
      latency.merge(local);
      committed += ok;
    });
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  SweepPoint point;
  point.workers = workers;
  point.committed = committed;
  point.submitted = node.counters().submitted;
  point.seconds = std::chrono::duration<double>(t1 - t0).count();
  point.tps = point.seconds > 0
                  ? static_cast<double>(committed) / point.seconds
                  : 0.0;
  point.latency = latency;
  point.seqlock_retries = retries.value() - retries0;
  point.rehash_fences = fences.value() - fences0;
  point.lock_wait_ms = timer_total_ms(mu_wait.merged()) - wait0_ms;
  point.epoch_seals = seals.value() - seals0;
  point.intent_conflicts = conflicts.value() - conflicts0;
  node.stop();
  return point;
}

void report_point(exp::BenchReport& rep, const Mix& mix, const SweepPoint& p,
                  double speedup) {
  char label[48];
  if (mix.name[0] == '\0') {
    std::snprintf(label, sizeof(label), "workers=%zu", p.workers);
  } else {
    std::snprintf(label, sizeof(label), "%s workers=%zu", mix.name, p.workers);
  }
  rep.begin_result(label);
  rep.field("workers", static_cast<std::int64_t>(p.workers));
  rep.field("committed", static_cast<std::int64_t>(p.committed));
  rep.field("submitted", static_cast<std::int64_t>(p.submitted));
  rep.field("txns_per_sec", p.tps);
  rep.field("p99_commit_ms", p.latency.quantile(0.99).to_ms());
  rep.field("p50_commit_ms", p.latency.quantile(0.5).to_ms());
  rep.field("seqlock_retries", static_cast<std::int64_t>(p.seqlock_retries));
  rep.field("rehash_fences", static_cast<std::int64_t>(p.rehash_fences));
  rep.field("lock_wait_ms", p.lock_wait_ms);
  rep.field("epoch_seals", static_cast<std::int64_t>(p.epoch_seals));
  rep.field("intent_conflicts",
            static_cast<std::int64_t>(p.intent_conflicts));
  rep.field("speedup_vs_1", speedup);
}

// ---- Mirror-side parallel apply sweep (DESIGN.md §14) -------------------

struct MirrorApplyPoint {
  std::size_t workers{0};
  std::uint64_t txns{0};
  /// Max (highest submitted seq - mirror applied floor) over periodic
  /// virtual-time samples: how far the mirror trailed the primary.
  std::uint64_t apply_lag_max{0};
  std::uint64_t apply_lag_final{0};
  double apply_parallelism{0};
  std::uint64_t waves{0};
  std::uint64_t parallel_txns{0};
  std::uint64_t conflict_cuts{0};
  std::uint64_t corrupt_txns{0};
  /// Wall-clock ApplyPool drain rate over the same released stream.
  double apply_txns_per_sec{0};
};

/// The write-heavy redo stream both halves of the sweep replay: 4 writes
/// per transaction over a small oid pool (plenty of footprint conflicts).
std::vector<log::ReleasedTxn> make_apply_stream(std::size_t n,
                                                std::uint64_t seed) {
  const ObjectId pool = std::max<std::size_t>(n / 4, 64);
  Rng rng(seed);
  std::vector<log::ReleasedTxn> txns;
  txns.reserve(n);
  for (ValidationTs seq = 1; seq <= n; ++seq) {
    log::ReleasedTxn t;
    t.seq = seq;
    t.txn = seq;
    for (int w = 0; w < 4; ++w) {
      const ObjectId oid = 1 + rng.next_u64() % pool;
      t.records.push_back(log::Record::write_image(
          seq, oid, storage::Value{"v" + std::to_string(seq)}));
    }
    t.records.push_back(log::Record::commit(seq, seq, seq * 10 + 1, 4));
    txns.push_back(std::move(t));
  }
  return txns;
}

MirrorApplyPoint run_mirror_apply(std::size_t workers,
                                  const exp::BenchArgs& args) {
  const std::size_t n = std::max<std::size_t>(args.txns, 64);
  const auto stream = make_apply_stream(n, args.seed);

  // Virtual-time half: primary ships the stream in group-commit batches,
  // the mirror applies epoch-at-a-time; sample the ack-floor lag.
  sim::Simulation sim;
  net::SimLink link{sim, {}};
  storage::ObjectStore pstore{4096};
  storage::ObjectStore mstore{4096};
  log::MemoryLogStorage pdisk;
  log::MemoryLogStorage mdisk;
  log::LogWriter writer{LogMode::kOff, &pdisk, nullptr};
  repl::PrimaryReplicator::Hooks hooks;
  repl::PrimaryReplicator primary(link.end_a(), sim, pstore, writer, hooks);
  writer.set_shipper(&primary);
  repl::MirrorService::Options options;
  options.store_to_disk = true;
  options.apply_workers = workers;
  repl::MirrorService mirror(mstore, &mdisk, link.end_b(), sim, options);
  mirror.attach_synced(1);
  writer.set_mode(LogMode::kMirror);
  log::LogWriter::BatchOptions batch;
  batch.max_txns = 8;
  batch.max_delay = Duration::micros(200);
  writer.configure_batching(&sim, batch, [&](Duration d) {
    sim.schedule_after(d, [&] { writer.flush_batch(); });
  });

  ValidationTs last_submitted = 0;
  std::uint64_t lag_max = 0;
  constexpr std::int64_t kArrivalUs = 20;  // 50k txn/s offered
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const log::ReleasedTxn& t = stream[i];
    sim.schedule_at(
        TimePoint{static_cast<std::int64_t>(i + 1) * kArrivalUs}, [&, i] {
          std::vector<log::Record> records = stream[i].records;
          writer.submit(stream[i].seq, std::move(records), {});
          last_submitted = stream[i].seq;
        });
    (void)t;
  }
  const std::int64_t horizon =
      static_cast<std::int64_t>(n) * kArrivalUs + 50000;
  for (std::int64_t at = 500; at <= horizon; at += 500) {
    sim.schedule_at(TimePoint{at}, [&] {
      const ValidationTs applied = mirror.applied_seq();
      if (last_submitted > applied) {
        lag_max = std::max<std::uint64_t>(lag_max, last_submitted - applied);
      }
    });
  }
  sim.run();

  MirrorApplyPoint point;
  point.workers = workers;
  point.txns = mirror.stats().txns_applied;
  point.apply_lag_max = lag_max;
  point.apply_lag_final = last_submitted - mirror.applied_seq();
  point.apply_parallelism = mirror.apply_parallelism();
  point.waves = mirror.apply_stats().waves;
  point.parallel_txns = mirror.apply_stats().parallel_txns;
  point.conflict_cuts = mirror.apply_stats().conflict_cuts;
  point.corrupt_txns = mirror.stats().corrupt_txns;

  // Wall-clock half: drain the identical stream through a bare pool in
  // 8-transaction epochs (the batch size above) against a fresh copy.
  storage::ObjectStore wall_store{4096};
  repl::ApplyPool pool(workers);
  auto apply = [&wall_store](const log::ReleasedTxn& t) {
    const ValidationTs serial_ts = t.records.back().serial_ts;
    for (const log::Record& r : t.records) {
      if (r.type == log::RecordType::kWriteImage) {
        wall_store.upsert(r.oid, r.after, serial_ts);
      }
    }
  };
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t begin = 0;
  while (begin < stream.size()) {
    const std::size_t end = std::min(begin + 8, stream.size());
    std::vector<log::ReleasedTxn> epoch(stream.begin() + begin,
                                        stream.begin() + end);
    pool.apply(epoch, apply);
    begin = end;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  point.apply_txns_per_sec =
      secs > 0 ? static_cast<double>(stream.size()) / secs : 0.0;
  return point;
}

void report_mirror_apply(exp::BenchReport& rep, const MirrorApplyPoint& p) {
  char label[48];
  std::snprintf(label, sizeof(label), "mirror_apply workers=%zu", p.workers);
  rep.begin_result(label);
  rep.field("workers", static_cast<std::int64_t>(p.workers));
  rep.field("txns", static_cast<std::int64_t>(p.txns));
  rep.field("apply_lag_max", static_cast<std::int64_t>(p.apply_lag_max));
  rep.field("apply_lag_final", static_cast<std::int64_t>(p.apply_lag_final));
  rep.field("apply_parallelism", p.apply_parallelism);
  rep.field("apply_waves", static_cast<std::int64_t>(p.waves));
  rep.field("apply_parallel_txns",
            static_cast<std::int64_t>(p.parallel_txns));
  rep.field("apply_conflict_cuts",
            static_cast<std::int64_t>(p.conflict_cuts));
  rep.field("corrupt_txns", static_cast<std::int64_t>(p.corrupt_txns));
  rep.field("apply_txns_per_sec", p.apply_txns_per_sec);
}

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchArgs args = exp::BenchArgs::parse(argc, argv);
  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs_config.tracing = false;
  obs::init(obs_config);

  const std::size_t cores = std::max(1u, std::thread::hardware_concurrency());
  exp::BenchReport rep("scaling");
  rep.set("txns", static_cast<std::int64_t>(args.txns));
  rep.set("seed", static_cast<std::int64_t>(args.seed));
  rep.set("write_fraction", 0.1);
  rep.set("write_fraction_heavy", 0.6);
  rep.set("hardware_concurrency", static_cast<std::int64_t>(cores));

  std::printf("=== Multicore primary: worker sweep over number translation ===\n");
  std::printf(
      "    (CostModel::zero, logging off, %zu txns per point, %zu cores)\n",
      args.txns, cores);
  if (cores < 4) {
    std::printf(
        "    NOTE: fewer than 4 cores — the sweep is oversubscribed and the "
        "speedup targets do not apply on this host.\n");
  }

  // Legacy read-heavy mix keeps its unprefixed labels; the write-heavy mix
  // is the parallel-commit-path stressor (DESIGN.md §13).
  const Mix mixes[] = {
      {"", 0.1, 8, 2},
      {"write_heavy", 0.6, 4, 4},
  };
  const std::size_t sweep[] = {1, 2, 4, 8};
  double speedup_at_4 = 0.0;
  double wh_speedup_at_8 = 0.0;
  double wh_mu_wait_at_8 = 0.0;
  for (const Mix& mix : mixes) {
    std::printf("  --- %s mix: write_fraction=%.1f ---\n",
                mix.name[0] ? mix.name : "read_heavy", mix.write_fraction);
    double tps_at_1 = 0.0;
    for (std::size_t workers : sweep) {
      const SweepPoint p = run_point(workers, mix, args);
      const double speedup = tps_at_1 > 0 ? p.tps / tps_at_1 : 1.0;
      if (workers == 1) tps_at_1 = p.tps;
      if (mix.name[0] == '\0' && workers == 4) speedup_at_4 = speedup;
      if (mix.name[0] != '\0' && workers == 8) {
        wh_speedup_at_8 = speedup;
        wh_mu_wait_at_8 = p.lock_wait_ms;
      }
      std::printf(
          "  workers=%zu  %9.0f txn/s  p99=%7.3fms  speedup=%.2fx  "
          "retries=%llu  fences=%llu  mu_wait=%.1fms  seals=%llu  "
          "conflicts=%llu\n",
          workers, p.tps, p.latency.quantile(0.99).to_ms(), speedup,
          static_cast<unsigned long long>(p.seqlock_retries),
          static_cast<unsigned long long>(p.rehash_fences), p.lock_wait_ms,
          static_cast<unsigned long long>(p.epoch_seals),
          static_cast<unsigned long long>(p.intent_conflicts));
      report_point(rep, mix, p, speedup);
    }
  }
  rep.set("speedup_at_4", speedup_at_4);
  rep.set("wh_speedup_at_8", wh_speedup_at_8);
  rep.set("wh_mu_wait_at_8_ms", wh_mu_wait_at_8);

  std::printf("=== Mirror parallel apply: width sweep over a write-heavy "
              "redo stream ===\n");
  std::int64_t mirror_lag_max_at_4 = 0;
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const MirrorApplyPoint p = run_mirror_apply(workers, args);
    if (workers == 4) {
      mirror_lag_max_at_4 = static_cast<std::int64_t>(p.apply_lag_max);
    }
    std::printf(
        "  apply_workers=%zu  lag_max=%llu txns  lag_final=%llu  "
        "wave_width=%.2f  cuts=%llu  pool=%.0f txn/s\n",
        workers, static_cast<unsigned long long>(p.apply_lag_max),
        static_cast<unsigned long long>(p.apply_lag_final),
        p.apply_parallelism, static_cast<unsigned long long>(p.conflict_cuts),
        p.apply_txns_per_sec);
    report_mirror_apply(rep, p);
  }
  rep.set("mirror_lag_max_at_4", mirror_lag_max_at_4);

  std::printf("  -> 4-worker speedup over 1 worker (read-heavy): %.2fx "
              "(target >= 2x)\n",
              speedup_at_4);
  std::printf("  -> 8-worker speedup over 1 worker (write-heavy): %.2fx "
              "(target >= 1.5x on 8+ cores)\n",
              wh_speedup_at_8);
  rep.write_file();
  return 0;
}
