// Ablation 1: the concurrency-control family under contention.
//
// The paper adopted OCC-DATI because it "reduces the number of unnecessary
// restarts" relative to OCC-DA and OCC-TI. This bench runs the same
// workload through every protocol at increasing contention (small hot
// database, high write share) and reports miss ratios and restarts per
// committed transaction. Expected ordering of restart counts:
// broadcast (OCC-BC) > OCC-TI (eager interval clamping) / OCC-DA (no
// backward ordering for the validator) > OCC-DATI; 2PL-HP trades restarts
// for blocking.
#include <cstdio>

#include "rodain/exp/args.hpp"
#include "rodain/exp/report.hpp"
#include "rodain/exp/session.hpp"

using namespace rodain;

int main(int argc, char** argv) {
  const exp::BenchArgs args = exp::BenchArgs::parse(argc, argv);
  exp::BenchReport rep("cc_compare");
  rep.set("txns", static_cast<std::int64_t>(args.txns));
  rep.set("reps", static_cast<std::int64_t>(args.reps));
  rep.set("seed", static_cast<std::int64_t>(args.seed));
  std::printf("=== Ablation 1: OCC-BC / OCC-DA / OCC-TI / OCC-DATI / 2PL-HP ===\n");
  std::printf("(single node, logging off, hot 200-object database with "
              "zipf(0.6) access, write fraction 0.8, %zu reps x %zu txns)\n\n",
              args.reps, args.txns);

  const cc::Protocol protocols[] = {cc::Protocol::kOccBc, cc::Protocol::kOccDa,
                                    cc::Protocol::kOccTi, cc::Protocol::kOccDati,
                                    cc::Protocol::kTwoPlHp};

  struct Mix {
    const char* name;
    double write_fraction;
  };
  // Read-heavy traffic is where dynamic serialization-order adjustment
  // pays: read-only transactions can commit "in the past" instead of being
  // broadcast-restarted by every committing writer.
  const Mix mixes[] = {{"read-heavy (20% writes)", 0.2},
                       {"write-heavy (80% writes)", 0.8}};
  for (const Mix& mix : mixes) {
    for (double rate : {200.0, 250.0}) {
      std::printf("--- %s, arrival rate %.0f txn/s ---\n", mix.name, rate);
      std::printf("%-10s  %-12s  %-16s  %-14s  %-12s\n", "protocol",
                  "miss-ratio", "restarts/commit", "conflict-abrt",
                  "commit-lat[ms]");
      for (cc::Protocol protocol : protocols) {
        exp::SessionConfig config;
        config.cluster = workload::PaperSetup::no_logging();
        config.cluster.node.engine.protocol = protocol;
        config.database = workload::PaperSetup::database();
        config.database.num_objects = 200;  // hot set => real contention
        config.cluster.node.store_capacity_hint = 200;
        config.workload = workload::PaperSetup::workload(mix.write_fraction);
        config.workload.zipf_theta = 0.6;  // skewed access, like real traffic
        config.arrival_rate_tps = rate;
        config.txn_count = args.txns;
        config.seed = args.seed;
        auto result = exp::run_repeated(config, args.reps);
        const double per_commit =
            result.totals.committed
                ? static_cast<double>(result.totals.restarts) /
                      static_cast<double>(result.totals.committed)
                : 0.0;
        std::printf("%-10s  %-12.4f  %-16.4f  %-14llu  %-12.3f\n",
                    std::string(cc::to_string(protocol)).c_str(),
                    result.miss_ratio.mean(), per_commit,
                    static_cast<unsigned long long>(result.totals.conflict_aborted),
                    result.commit_latency_ms.mean());
        char label[64];
        std::snprintf(label, sizeof label, "%s %s rate=%.0f",
                      std::string(cc::to_string(protocol)).c_str(), mix.name,
                      rate);
        rep.add_repeated(label, result);
        rep.field("protocol", cc::to_string(protocol));
        rep.field("write_fraction", mix.write_fraction);
        rep.field("rate_tps", rate);
        rep.field("restarts_per_commit", per_commit);
      }
      std::printf("\n");
    }
  }
  std::printf("expected: OCC-DATI commits with the fewest restarts "
              "(the paper's motivation for combining OCC-DA and OCC-TI).\n");
  rep.write_file();
  return 0;
}
