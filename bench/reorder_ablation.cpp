// Ablation 4: mirror-side log reordering (paper §3).
//
// The mirror reorders records into true validation order before applying
// and storing them, so (a) it never undoes anything and (b) recovery is a
// single forward pass. We quantify both halves:
//   * reorder buffering: staged-transaction depth as a function of how far
//     write-phase completion order strays from validation order;
//   * recovery: peak buffered transactions when replaying an ordered log
//     (mirror-written) versus an unordered one (lone-node-written).
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "rodain/common/rng.hpp"
#include "rodain/exp/args.hpp"
#include "rodain/exp/report.hpp"
#include "rodain/exp/session.hpp"
#include "rodain/log/reorder.hpp"

using namespace rodain;

namespace {

/// Build a stream of per-txn record batches whose arrival order deviates
/// from seq order by up to `skew` positions (bounded reordering, the shape
/// overlapping write phases produce).
std::vector<std::vector<log::Record>> skewed_stream(std::size_t txns,
                                                    std::size_t skew,
                                                    Rng& rng) {
  std::vector<std::vector<log::Record>> batches(txns);
  for (std::size_t i = 0; i < txns; ++i) {
    const auto seq = static_cast<ValidationTs>(i + 1);
    storage::Value v{std::string_view{"after-image-payload-0123456789ab", 32}};
    batches[i].push_back(log::Record::write_image(seq, 1 + (i % 100), v));
    batches[i].push_back(log::Record::write_image(seq, 101 + (i % 100), v));
    batches[i].push_back(log::Record::commit(seq, seq, seq * cc::kTsSpacing, 2));
  }
  // Bounded shuffle: swap each batch with one up to `skew` ahead.
  for (std::size_t i = 0; i + 1 < batches.size(); ++i) {
    const std::size_t j =
        i + rng.next_below(std::min(skew + 1, batches.size() - i));
    std::swap(batches[i], batches[j]);
  }
  return batches;
}

void reorder_depth_study(const exp::BenchArgs& args, exp::BenchReport& rep) {
  std::printf("--- reorder buffering vs write-phase skew (%zu txns) ---\n",
              args.txns);
  exp::SeriesPrinter printer("skew", {"max staged", "released in order"});
  for (std::size_t skew : {0uz, 2uz, 8uz, 32uz, 128uz}) {
    Rng rng(args.seed + skew);
    auto batches = skewed_stream(args.txns, skew, rng);
    std::size_t max_staged = 0;
    ValidationTs last_released = 0;
    bool in_order = true;
    log::Reorderer reorderer([&](ValidationTs seq, TxnId, std::vector<log::Record>) {
      in_order &= (seq == last_released + 1);
      last_released = seq;
    });
    for (auto& batch : batches) {
      for (auto& record : batch) (void)reorderer.add(std::move(record));
      max_staged = std::max(max_staged, reorderer.staged_commits());
    }
    printer.add_row(static_cast<double>(skew),
                    {static_cast<double>(max_staged), in_order ? 1.0 : 0.0});
    char label[48];
    std::snprintf(label, sizeof label, "reorder skew=%zu", skew);
    rep.begin_result(label);
    rep.field("skew", static_cast<std::int64_t>(skew));
    rep.field("max_staged", static_cast<std::int64_t>(max_staged));
    rep.field("released_in_order", in_order ? 1.0 : 0.0);
  }
  printer.print();
}

void recovery_pass_study(const exp::BenchArgs& args, exp::BenchReport& rep) {
  std::printf("\n--- recovery buffering: ordered (mirror) vs unordered (lone "
              "node) log ---\n");
  // Simulate the recovery reader's buffering requirement directly: an
  // ordered log releases each transaction the moment its commit record is
  // read; an unordered one must hold transactions until the gap closes.
  exp::SeriesPrinter printer("skew", {"peak buffered txns", "single-pass"});
  for (std::size_t skew : {0uz, 8uz, 128uz, 1024uz}) {
    Rng rng(args.seed + skew);
    auto batches = skewed_stream(args.txns, skew, rng);
    std::size_t peak = 0;
    ValidationTs next = 1;
    std::map<ValidationTs, bool> pending;
    for (const auto& batch : batches) {
      const ValidationTs seq = batch.back().seq;
      pending.emplace(seq, true);
      while (!pending.empty() && pending.begin()->first == next) {
        pending.erase(pending.begin());
        ++next;
      }
      peak = std::max(peak, pending.size());
    }
    printer.add_row(static_cast<double>(skew),
                    {static_cast<double>(peak), peak <= 1 ? 1.0 : 0.0});
    char label[48];
    std::snprintf(label, sizeof label, "recovery skew=%zu", skew);
    rep.begin_result(label);
    rep.field("skew", static_cast<std::int64_t>(skew));
    rep.field("peak_buffered_txns", static_cast<std::int64_t>(peak));
    rep.field("single_pass", peak <= 1 ? 1.0 : 0.0);
  }
  printer.print();
  std::printf("  => the mirror's reordering moves this buffering off the "
              "recovery path: a mirror-written log replays with O(1) state.\n");
}

}  // namespace

int main(int argc, char** argv) {
  exp::BenchArgs args = exp::BenchArgs::parse(argc, argv);
  args.txns = std::min<std::size_t>(args.txns, 20000);
  exp::BenchReport rep("reorder_ablation");
  rep.set("txns", static_cast<std::int64_t>(args.txns));
  rep.set("seed", static_cast<std::int64_t>(args.seed));
  std::printf("=== Ablation 4: mirror log reordering ===\n\n");
  reorder_depth_study(args, rep);
  recovery_pass_study(args, rep);
  rep.write_file();
  return 0;
}
