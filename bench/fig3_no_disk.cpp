// Reproduces Fig. 3 of the paper: disk writes turned off, isolating the
// overhead of the log-handling algorithms themselves.
//
//   Series per panel: "No logs" (logging compiled out — the optimal),
//   single node (log records generated and processed, no disk),
//   two node (logs shipped to the mirror and applied there, no disk).
//   Panels (a)/(b)/(c): write ratio 0 % / 20 % / 80 %; x = arrival rate.
//
// Expected shape (paper §4): all three series saturate at 200-300 txn/s
// (claim C1); the two-node system tracks the no-log optimum closely
// (claim C3) because the commit round-trip overlaps with other work, and
// the write-ratio effect stays small (claim C2).
#include <cstdio>

#include "rodain/exp/args.hpp"
#include "rodain/exp/report.hpp"
#include "rodain/exp/session.hpp"

using namespace rodain;

namespace {

double run_config(const simdb::SimClusterConfig& cluster, double rate,
                  double write_fraction, const exp::BenchArgs& args) {
  exp::SessionConfig config;
  config.cluster = cluster;
  config.database = workload::PaperSetup::database();
  config.workload = workload::PaperSetup::workload(write_fraction);
  config.arrival_rate_tps = rate;
  config.txn_count = args.txns;
  config.seed = args.seed;
  return exp::run_repeated(config, args.reps).miss_ratio.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchArgs args = exp::BenchArgs::parse(argc, argv);
  exp::BenchReport rep("fig3_no_disk");
  rep.set("txns", static_cast<std::int64_t>(args.txns));
  rep.set("reps", static_cast<std::int64_t>(args.reps));
  rep.set("seed", static_cast<std::int64_t>(args.seed));
  std::printf("=== Fig 3: optimal (No logs) vs single node vs two node, "
              "disk writing turned off ===\n");
  std::printf("(%zu reps x %zu txns per point; paper: 20 x 10000)\n", args.reps,
              args.txns);

  const double rates[] = {50, 100, 150, 200, 250, 300, 350, 400};
  struct Panel {
    const char* name;
    double write_fraction;
  };
  const Panel panels[] = {{"(a) write ratio 0%", 0.0},
                          {"(b) write ratio 20%", 0.2},
                          {"(c) write ratio 80%", 0.8}};

  double max_gap_two_vs_nolog = 0;
  for (const Panel& panel : panels) {
    std::printf("\n--- Fig 3%s ---\n", panel.name);
    exp::SeriesPrinter printer("rate[txn/s]",
                               {"no-logs miss", "single miss", "two-node miss"});
    for (double rate : rates) {
      const double no_logs =
          run_config(workload::PaperSetup::no_logging(), rate,
                     panel.write_fraction, args);
      const double single =
          run_config(workload::PaperSetup::single_node(false), rate,
                     panel.write_fraction, args);
      const double two = run_config(workload::PaperSetup::two_node(false), rate,
                                    panel.write_fraction, args);
      printer.add_row(rate, {no_logs, single, two});
      max_gap_two_vs_nolog = std::max(max_gap_two_vs_nolog, two - no_logs);
      char label[48];
      std::snprintf(label, sizeof label, "%s rate=%.0f", panel.name, rate);
      rep.begin_result(label);
      rep.field("write_fraction", panel.write_fraction);
      rep.field("rate_tps", rate);
      rep.field("no_logs_miss", no_logs);
      rep.field("single_node_miss", single);
      rep.field("two_node_miss", two);
    }
    printer.print();
  }
  std::printf("\nclaim C3 (two-node-no-disk tracks the no-log optimum): "
              "largest miss-ratio gap observed = %.3f\n",
              max_gap_two_vs_nolog);
  rep.set("max_gap_two_vs_nolog", max_gap_two_vs_nolog);
  rep.write_file();
  return 0;
}
