// Ablation 2: commit-latency decomposition of the three logging paths.
//
// The paper's core argument is that replacing the synchronous disk write
// with one message round-trip to the Mirror Node shortens and stabilizes
// the commit phase. At light load (no queueing noise) we measure the commit
// latency of update transactions under:
//   * logging off               (lower bound),
//   * mirror shipping           (sweep of network round-trip time),
//   * direct disk               (sweep of disk seek time, +group commit).
#include <cstdio>

#include "rodain/exp/args.hpp"
#include "rodain/exp/report.hpp"
#include "rodain/exp/session.hpp"

using namespace rodain;

namespace {

exp::SessionResult run_one(simdb::SimClusterConfig cluster,
                           const exp::BenchArgs& args) {
  exp::SessionConfig config;
  config.cluster = std::move(cluster);
  config.database = workload::PaperSetup::database();
  config.workload = workload::PaperSetup::workload(1.0);  // updates only
  config.arrival_rate_tps = 100.0;                        // light load
  config.txn_count = args.txns / 2;
  config.seed = args.seed;
  return exp::run_session(config);
}

void report(exp::BenchReport& rep, const char* label,
            const exp::SessionResult& result) {
  std::printf("  %-34s mean=%7.3fms  p50=%7.3fms  p99=%7.3fms  miss=%.4f\n",
              label, result.commit_latency.mean().to_ms(),
              result.commit_latency.quantile(0.5).to_ms(),
              result.commit_latency.quantile(0.99).to_ms(),
              result.miss_ratio());
  rep.add_session(label, result);
}

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchArgs args = exp::BenchArgs::parse(argc, argv);
  exp::BenchReport rep("commit_path");
  rep.set("txns", static_cast<std::int64_t>(args.txns / 2));
  rep.set("seed", static_cast<std::int64_t>(args.seed));
  std::printf("=== Ablation 2: commit path — disk write vs mirror round-trip ===\n");
  std::printf("(update-only workload at light load, %zu txns per point)\n\n",
              args.txns / 2);

  report(rep, "no logging (lower bound)", run_one(workload::PaperSetup::no_logging(), args));

  std::printf("\n  mirror path, network round-trip sweep:\n");
  for (double rtt_ms : {0.2, 0.5, 1.0, 2.0, 5.0}) {
    auto cluster = workload::PaperSetup::two_node(true);
    cluster.link.latency = Duration::millis_f(rtt_ms / 2);
    char label[64];
    std::snprintf(label, sizeof label, "two-node, RTT %.1f ms", rtt_ms);
    report(rep, label, run_one(cluster, args));
  }

  std::printf("\n  direct-disk path, seek-time sweep (no group commit):\n");
  for (double seek_ms : {2.0, 8.0, 15.0}) {
    auto cluster = workload::PaperSetup::single_node(true);
    cluster.node.disk.seek_time = Duration::millis_f(seek_ms);
    char label[64];
    std::snprintf(label, sizeof label, "single-node, disk seek %.0f ms", seek_ms);
    report(rep, label, run_one(cluster, args));
  }

  std::printf("\n  direct-disk path with group commit (coalesced flushes):\n");
  {
    auto cluster = workload::PaperSetup::single_node(true);
    cluster.node.disk.coalesce_flushes = true;
    report(rep, "single-node, 8 ms seek + group commit", run_one(cluster, args));
  }

  std::printf("\n=> the mirror path costs ~one RTT above the no-log bound and "
              "stays an order of magnitude below a synchronous 8 ms disk "
              "write (the paper's core claim).\n");
  rep.write_file();
  return 0;
}
