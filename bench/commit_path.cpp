// Ablation 2: commit-latency decomposition of the three logging paths.
//
// The paper's core argument is that replacing the synchronous disk write
// with one message round-trip to the Mirror Node shortens and stabilizes
// the commit phase. At light load (no queueing noise) we measure the commit
// latency of update transactions under:
//   * logging off               (lower bound),
//   * mirror shipping           (sweep of network round-trip time),
//   * direct disk               (sweep of disk seek time, +group commit).
//
// A fourth section sweeps the replication group-commit batch size
// (DESIGN.md §9): with a fixed per-frame protocol overhead, a per-txn frame
// stream saturates the sender at high rates while batching pays the
// overhead once per batch — the DeWitt group-commit amortization on the
// mirror path.
#include <cstdio>

#include "rodain/exp/args.hpp"
#include "rodain/exp/report.hpp"
#include "rodain/exp/session.hpp"

using namespace rodain;

namespace {

exp::SessionResult run_at(simdb::SimClusterConfig cluster,
                          const exp::BenchArgs& args, double rate_tps) {
  exp::SessionConfig config;
  config.cluster = std::move(cluster);
  config.database = workload::PaperSetup::database();
  config.workload = workload::PaperSetup::workload(1.0);  // updates only
  config.arrival_rate_tps = rate_tps;
  config.txn_count = args.txns / 2;
  config.seed = args.seed;
  return exp::run_session(config);
}

exp::SessionResult run_one(simdb::SimClusterConfig cluster,
                           const exp::BenchArgs& args) {
  return run_at(std::move(cluster), args, 100.0);  // light load
}

void report(exp::BenchReport& rep, const char* label,
            const exp::SessionResult& result) {
  std::printf("  %-34s mean=%7.3fms  p50=%7.3fms  p99=%7.3fms  miss=%.4f\n",
              label, result.commit_latency.mean().to_ms(),
              result.commit_latency.quantile(0.5).to_ms(),
              result.commit_latency.quantile(0.99).to_ms(),
              result.miss_ratio());
  rep.add_session(label, result);
}

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchArgs args = exp::BenchArgs::parse(argc, argv);
  exp::BenchReport rep("commit_path");
  rep.set("txns", static_cast<std::int64_t>(args.txns / 2));
  rep.set("seed", static_cast<std::int64_t>(args.seed));
  std::printf("=== Ablation 2: commit path — disk write vs mirror round-trip ===\n");
  std::printf("(update-only workload at light load, %zu txns per point)\n\n",
              args.txns / 2);

  report(rep, "no logging (lower bound)", run_one(workload::PaperSetup::no_logging(), args));

  std::printf("\n  mirror path, network round-trip sweep:\n");
  for (double rtt_ms : {0.2, 0.5, 1.0, 2.0, 5.0}) {
    auto cluster = workload::PaperSetup::two_node(true);
    cluster.link.latency = Duration::millis_f(rtt_ms / 2);
    char label[64];
    std::snprintf(label, sizeof label, "two-node, RTT %.1f ms", rtt_ms);
    report(rep, label, run_one(cluster, args));
  }

  std::printf("\n  direct-disk path, seek-time sweep (no group commit):\n");
  for (double seek_ms : {2.0, 8.0, 15.0}) {
    auto cluster = workload::PaperSetup::single_node(true);
    cluster.node.disk.seek_time = Duration::millis_f(seek_ms);
    char label[64];
    std::snprintf(label, sizeof label, "single-node, disk seek %.0f ms", seek_ms);
    report(rep, label, run_one(cluster, args));
  }

  std::printf("\n  direct-disk path with group commit (coalesced flushes):\n");
  {
    auto cluster = workload::PaperSetup::single_node(true);
    cluster.node.disk.coalesce_flushes = true;
    report(rep, "single-node, 8 ms seek + group commit", run_one(cluster, args));
  }

  // Group-commit batch sweep. Instant CPU isolates the wire cost: at
  // 3000 tps a 400 us per-frame overhead makes the per-txn frame stream
  // (batch 1) oversubscribe the sender's serial transmitter in both
  // directions (frames out, acks back), while batching pays the overhead
  // once per batch and the mirror answers with one cumulative ack.
  const double kBatchRate = 3000.0;
  const Duration kFrameOverhead = Duration::micros(400);
  const Duration kBatchDelay = args.batch_delay_us > 0
                                   ? Duration::micros(args.batch_delay_us)
                                   : Duration::millis(5);
  std::printf("\n  mirror path, group-commit batch sweep (instant CPU, "
              "%.0f tps, %lld us/frame overhead):\n",
              kBatchRate, static_cast<long long>(kFrameOverhead.us));

  double batch_baseline_ms = 0.0;
  {
    auto cluster = workload::PaperSetup::no_logging();
    cluster.node.engine.costs = engine::CostModel::zero();
    batch_baseline_ms = run_at(cluster, args, kBatchRate)
                            .commit_latency.mean()
                            .to_ms();
  }
  for (std::size_t batch : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, std::size_t{16}, std::size_t{32}}) {
    auto cluster = workload::PaperSetup::two_node(true);
    cluster.node.engine.costs = engine::CostModel::zero();
    cluster.link.latency = Duration::micros(500);  // 1 ms RTT
    cluster.link.per_frame_overhead = kFrameOverhead;
    cluster.node.log_batch.max_txns = batch;
    if (batch > 1) {
      cluster.node.log_batch.max_bytes = args.batch_bytes;
      cluster.node.log_batch.max_delay = kBatchDelay;
      cluster.node.log_batch.adaptive_delay = args.batch_adaptive;
    }
    const exp::SessionResult result = run_at(cluster, args, kBatchRate);
    char label[64];
    std::snprintf(label, sizeof label, "group commit, batch %zu", batch);
    report(rep, label, result);
    const double fill =
        result.log_batches_shipped > 0
            ? static_cast<double>(result.log_batch_txns) /
                  static_cast<double>(result.log_batches_shipped)
            : 0.0;
    const double overhead_ms =
        result.commit_latency.mean().to_ms() - batch_baseline_ms;
    std::printf("    %-32s fill=%5.2f txns/frame  acks=%llu for %llu "
                "commits  overhead=%.3fms\n",
                label, fill,
                static_cast<unsigned long long>(result.mirror_acks_sent),
                static_cast<unsigned long long>(result.mirror_ack_commits),
                overhead_ms);
    rep.field("batch_max_txns", static_cast<std::int64_t>(batch));
    rep.field("batch_delay_us",
              static_cast<std::int64_t>(batch > 1 ? kBatchDelay.us : 0));
    rep.field("batches_shipped",
              static_cast<std::int64_t>(result.log_batches_shipped));
    rep.field("batch_txns_shipped",
              static_cast<std::int64_t>(result.log_batch_txns));
    rep.field("mean_batch_fill", fill);
    rep.field("acks_sent", static_cast<std::int64_t>(result.mirror_acks_sent));
    rep.field("ack_commits_covered",
              static_cast<std::int64_t>(result.mirror_ack_commits));
    rep.field("commit_overhead_ms", overhead_ms);
  }

  std::printf("\n=> the mirror path costs ~one RTT above the no-log bound and "
              "stays an order of magnitude below a synchronous 8 ms disk "
              "write (the paper's core claim); batching amortizes the "
              "per-frame overhead once the stream would otherwise saturate "
              "the sender.\n");
  rep.write_file();
  return 0;
}
