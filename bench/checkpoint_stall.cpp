// Checkpoint stall sweep (DESIGN.md §15): run the same write-heavy
// closed-loop workload at two store sizes 10x apart, with checkpointing
// off ("none"), fuzzy CoW checkpoints ("fuzzy", the default) and the
// legacy stop-the-world encode ("stw"). Per point: committed throughput,
// commit-latency tails while checkpoints land mid-run, and the write
// stall the checkpoint path charged to node.checkpoint_stall_us.
//
// The two headline ratios the trend gate watches:
//   stall_flat_ratio        fuzzy mean stall at the large store over the
//                           small one — the flip is O(1), so growing the
//                           store 10x must NOT grow the stall 10x (the
//                           stw_stall_ratio column shows what proportional
//                           looks like).
//   fuzzy_p99_over_none_large  p99 commit latency with fuzzy checkpoints
//                           landing mid-run over the no-checkpoint
//                           baseline at the large store (target: ~1x,
//                           acceptance < 2x).
//
// Points run for a fixed wall-clock window (not a fixed txn count) so the
// 25ms cadence fires several times inside every point even in --smoke.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rodain/common/stats.hpp"
#include "rodain/exp/args.hpp"
#include "rodain/exp/report.hpp"
#include "rodain/obs/obs.hpp"
#include "rodain/rt/node.hpp"
#include "rodain/workload/number_translation.hpp"

using namespace rodain;
using namespace rodain::literals;

namespace {

enum class Mode { kNone, kFuzzy, kStw };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kNone: return "none";
    case Mode::kFuzzy: return "fuzzy";
    case Mode::kStw: return "stw";
  }
  return "?";
}

struct StallPoint {
  Mode mode{Mode::kNone};
  std::size_t store_size{0};
  std::uint64_t committed{0};
  std::uint64_t submitted{0};
  double seconds{0};
  double tps{0};
  LatencyHistogram latency;
  std::uint64_t checkpoints{0};
  std::uint64_t failures{0};
  std::uint64_t stall_count{0};
  double stall_mean_us{0};
  double stall_total_ms{0};
  std::uint64_t bytes_full{0};
  std::uint64_t bytes_delta{0};
};

double timer_total_ms(const LatencyHistogram& h) {
  return h.mean().to_ms() * static_cast<double>(h.count());
}

StallPoint run_point(Mode mode, std::size_t store_size, double window_s,
                     const exp::BenchArgs& args,
                     const std::filesystem::path& dir) {
  workload::DatabaseConfig dbc;
  dbc.num_objects = store_size;
  workload::WorkloadConfig wlc;
  // Write-heavy: every committed txn dirties records, so deltas have
  // something to carry and the stw encode races real commit traffic.
  wlc.write_fraction = 0.6;
  wlc.reads_per_txn = 4;
  wlc.updates_per_txn = 4;
  // Latency experiment, not a deadline one: give every txn room so the
  // miss path never confounds the p99-during-checkpoint signal.
  wlc.read_deadline = Duration::seconds(30);
  wlc.write_deadline = Duration::seconds(30);

  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  rt::NodeConfig config;
  config.overload.max_active = 100000;
  config.store_capacity_hint = store_size * 2;
  config.fuzzy_checkpoint = mode == Mode::kFuzzy;
  if (mode != Mode::kNone) {
    config.checkpoint_path = (dir / "db.ckpt").string();
    config.checkpoint_interval = 50_ms;
  }
  rt::Node node(config, "ckpt_stall");
  workload::load_database(dbc, node.store(), node.index());
  node.start_primary(LogMode::kOff);

  obs::Timer& stall = obs::metrics().timer("node.checkpoint_stall_us");
  obs::Counter& checkpoints = obs::metrics().counter("node.checkpoints");
  obs::Counter& failures =
      obs::metrics().counter("node.checkpoint_failures");
  obs::Counter& bytes_full = obs::metrics().counter("ckpt.bytes_full");
  obs::Counter& bytes_delta = obs::metrics().counter("ckpt.bytes_delta");
  const LatencyHistogram stall0 = stall.merged();
  const std::uint64_t ckpt0 = checkpoints.value();
  const std::uint64_t fail0 = failures.value();
  const std::uint64_t full0 = bytes_full.value();
  const std::uint64_t delta0 = bytes_delta.value();

  // Closed loop for a fixed wall-clock window so the checkpoint cadence
  // fires mid-run regardless of host speed or --smoke txn budget. Two
  // clients keep the single worker fed without drowning small hosts —
  // the p99 comparison needs the encoder, not the clients, to be the
  // contended party.
  const std::size_t clients = 2;
  std::mutex merge_mu;
  LatencyHistogram latency;
  std::uint64_t committed = 0;

  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(window_s));
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      workload::TxnGenerator gen(dbc, wlc, Rng(args.seed + 1000 * c + 1));
      LatencyHistogram local;
      std::uint64_t ok = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        const rt::CommitInfo info = node.execute(gen.next());
        if (info.outcome == TxnOutcome::kCommitted) {
          ++ok;
          local.add(info.latency);
        }
      }
      std::lock_guard lock(merge_mu);
      latency.merge(local);
      committed += ok;
    });
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  StallPoint point;
  point.mode = mode;
  point.store_size = store_size;
  point.committed = committed;
  point.submitted = node.counters().submitted;
  point.seconds = std::chrono::duration<double>(t1 - t0).count();
  point.tps = point.seconds > 0
                  ? static_cast<double>(committed) / point.seconds
                  : 0.0;
  point.latency = latency;
  const LatencyHistogram stall1 = stall.merged();
  point.stall_count = stall1.count() - stall0.count();
  point.stall_total_ms = timer_total_ms(stall1) - timer_total_ms(stall0);
  point.stall_mean_us =
      point.stall_count > 0
          ? point.stall_total_ms * 1000.0 /
                static_cast<double>(point.stall_count)
          : 0.0;
  point.checkpoints = checkpoints.value() - ckpt0;
  point.failures = failures.value() - fail0;
  point.bytes_full = bytes_full.value() - full0;
  point.bytes_delta = bytes_delta.value() - delta0;
  node.stop();
  std::filesystem::remove_all(dir);
  return point;
}

void report_point(exp::BenchReport& rep, const StallPoint& p) {
  char label[48];
  std::snprintf(label, sizeof(label), "%s size=%zu", mode_name(p.mode),
                p.store_size);
  rep.begin_result(label);
  rep.field("mode", mode_name(p.mode));
  rep.field("store_size", static_cast<std::int64_t>(p.store_size));
  rep.field("committed", static_cast<std::int64_t>(p.committed));
  rep.field("submitted", static_cast<std::int64_t>(p.submitted));
  rep.field("txns_per_sec", p.tps);
  rep.field("p99_commit_ms", p.latency.quantile(0.99).to_ms());
  rep.field("p50_commit_ms", p.latency.quantile(0.5).to_ms());
  rep.field("checkpoints", static_cast<std::int64_t>(p.checkpoints));
  rep.field("checkpoint_failures", static_cast<std::int64_t>(p.failures));
  rep.field("stall_count", static_cast<std::int64_t>(p.stall_count));
  rep.field("stall_mean_us", p.stall_mean_us);
  rep.field("stall_total_ms", p.stall_total_ms);
  rep.field("bytes_full", static_cast<std::int64_t>(p.bytes_full));
  rep.field("bytes_delta", static_cast<std::int64_t>(p.bytes_delta));
}

void print_point(const StallPoint& p) {
  std::printf(
      "  %-5s size=%-7zu %9.0f txn/s  p99=%7.3fms  ckpts=%llu  "
      "stall_mean=%.0fus  stall_total=%.1fms  full=%lluB  delta=%lluB\n",
      mode_name(p.mode), p.store_size, p.tps,
      p.latency.quantile(0.99).to_ms(),
      static_cast<unsigned long long>(p.checkpoints), p.stall_mean_us,
      p.stall_total_ms, static_cast<unsigned long long>(p.bytes_full),
      static_cast<unsigned long long>(p.bytes_delta));
}

double ratio(double num, double den) { return den > 0 ? num / den : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchArgs args = exp::BenchArgs::parse(argc, argv);
  obs::ObsConfig obs_config;
  obs_config.enabled = true;
  obs_config.tracing = false;
  obs::init(obs_config);

  // Store sizes a decade apart; --smoke shrinks both but keeps the 10x.
  const std::size_t small =
      std::clamp<std::size_t>(args.txns * 4, 2000, 10000);
  const std::size_t large = small * 10;
  // Long enough for several 50ms cadence ticks per point.
  const double window_s = args.txns <= 1000 ? 0.4 : 1.0;

  exp::BenchReport rep("checkpoint_stall");
  rep.set("txns", static_cast<std::int64_t>(args.txns));
  rep.set("seed", static_cast<std::int64_t>(args.seed));
  rep.set("store_small", static_cast<std::int64_t>(small));
  rep.set("store_large", static_cast<std::int64_t>(large));
  rep.set("window_s", window_s);

  const auto dir =
      std::filesystem::temp_directory_path() / "rodain_bench_ckpt_stall";

  std::printf("=== Checkpoint stall: fuzzy vs stop-the-world, store %zu -> "
              "%zu ===\n",
              small, large);

  // Fuzzy points run before any stw point so the monotone global max of
  // the shared stall timer is still fuzzy-only when sampled.
  StallPoint none_s, none_l, fuzzy_s, fuzzy_l, stw_s, stw_l;
  none_s = run_point(Mode::kNone, small, window_s, args, dir);
  none_l = run_point(Mode::kNone, large, window_s, args, dir);
  fuzzy_s = run_point(Mode::kFuzzy, small, window_s, args, dir);
  fuzzy_l = run_point(Mode::kFuzzy, large, window_s, args, dir);
  const double fuzzy_stall_max_us =
      static_cast<double>(obs::metrics()
                              .timer("node.checkpoint_stall_us")
                              .merged()
                              .max_value()
                              .us);
  stw_s = run_point(Mode::kStw, small, window_s, args, dir);
  stw_l = run_point(Mode::kStw, large, window_s, args, dir);

  for (const StallPoint* p :
       {&none_s, &none_l, &fuzzy_s, &fuzzy_l, &stw_s, &stw_l}) {
    print_point(*p);
    report_point(rep, *p);
  }

  const double stall_flat_ratio =
      ratio(fuzzy_l.stall_mean_us, fuzzy_s.stall_mean_us);
  const double stw_stall_ratio =
      ratio(stw_l.stall_mean_us, stw_s.stall_mean_us);
  const double p99_over_none =
      ratio(fuzzy_l.latency.quantile(0.99).to_ms(),
            none_l.latency.quantile(0.99).to_ms());
  const bool fuzzy_ok = fuzzy_s.checkpoints > 0 && fuzzy_l.checkpoints > 0 &&
                        fuzzy_s.failures == 0 && fuzzy_l.failures == 0;

  rep.set("stall_flat_ratio", stall_flat_ratio);
  rep.set("stw_stall_ratio", stw_stall_ratio);
  rep.set("fuzzy_p99_over_none_large", p99_over_none);
  rep.set("fuzzy_stall_max_us", fuzzy_stall_max_us);
  rep.set("fuzzy_checkpoints_ok", static_cast<std::int64_t>(fuzzy_ok));

  std::printf(
      "  -> fuzzy stall growth over 10x store: %.2fx (stw grows %.2fx)\n",
      stall_flat_ratio, stw_stall_ratio);
  std::printf(
      "  -> p99 during fuzzy checkpoints / no-checkpoint baseline: %.2fx "
      "(target < 2x)\n",
      p99_over_none);
  std::printf("  -> fuzzy max stall: %.0fus over %llu checkpoints\n",
              fuzzy_stall_max_us,
              static_cast<unsigned long long>(fuzzy_s.checkpoints +
                                              fuzzy_l.checkpoints));
  rep.write_file();
  return 0;
}
