// Reproduces Fig. 2 of the paper: normal mode (Primary + Mirror, logs
// shipped to the mirror which flushes them to disk asynchronously) versus
// transient mode (a lone node that must write the log to disk before every
// commit) — with *true log writes*.
//
//   Fig 2(a): transaction miss ratio vs arrival rate at write ratio 50 %.
//   Fig 2(b): transaction miss ratio vs write fraction at 300 txn/s.
//
// Expected shape (paper §4): the lone node's synchronous disk writes become
// the bottleneck well below the CPU knee, so the two-node system sustains a
// far higher arrival rate; the write-ratio effect is comparatively small
// because transactions update few objects and even read-only transactions
// generate a commit record (claim C2).
#include <cstdio>
#include <vector>

#include "rodain/exp/args.hpp"
#include "rodain/exp/report.hpp"
#include "rodain/exp/session.hpp"

using namespace rodain;

namespace {

exp::RepeatedResult run_config(const simdb::SimClusterConfig& cluster,
                               double rate, double write_fraction,
                               const exp::BenchArgs& args) {
  exp::SessionConfig config;
  config.cluster = cluster;
  config.database = workload::PaperSetup::database();
  config.workload = workload::PaperSetup::workload(write_fraction);
  config.arrival_rate_tps = rate;
  config.txn_count = args.txns;
  config.seed = args.seed;
  return exp::run_repeated(config, args.reps);
}

void print_breakdown(const char* label, const TxnCounters& t) {
  std::printf(
      "    %-22s submitted=%llu committed=%llu missed-deadline=%llu "
      "overload=%llu conflict=%llu restarts=%llu\n",
      label, static_cast<unsigned long long>(t.submitted),
      static_cast<unsigned long long>(t.committed),
      static_cast<unsigned long long>(t.missed_deadline),
      static_cast<unsigned long long>(t.overload_rejected),
      static_cast<unsigned long long>(t.conflict_aborted),
      static_cast<unsigned long long>(t.restarts));
}

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchArgs args = exp::BenchArgs::parse(argc, argv);
  exp::BenchReport rep("fig2_log_modes");
  rep.set("txns", static_cast<std::int64_t>(args.txns));
  rep.set("reps", static_cast<std::int64_t>(args.reps));
  rep.set("seed", static_cast<std::int64_t>(args.seed));
  std::printf("=== Fig 2: normal (two node) vs transient (single node) mode, "
              "true log writes ===\n");
  std::printf("(%zu reps x %zu txns per point; paper: 20 x 10000)\n\n",
              args.reps, args.txns);

  // ---------------- Fig 2(a): miss ratio vs arrival rate, write 50 % ----
  std::printf("--- Fig 2(a): write ratio 50%%, sweep arrival rate ---\n");
  exp::SeriesPrinter fig2a("rate[txn/s]",
                           {"two-node miss", "single-node miss"});
  TxnCounters two_total, single_total;
  for (double rate : {50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0}) {
    auto two = run_config(workload::PaperSetup::two_node(true), rate, 0.5, args);
    auto single = run_config(workload::PaperSetup::single_node(true), rate, 0.5, args);
    fig2a.add_row(rate, {two.miss_ratio.mean(), single.miss_ratio.mean()});
    two_total.merge(two.totals);
    single_total.merge(single.totals);
    char label[48];
    std::snprintf(label, sizeof label, "fig2a two-node rate=%.0f", rate);
    rep.add_repeated(label, two);
    rep.field("rate_tps", rate);
    std::snprintf(label, sizeof label, "fig2a single-node rate=%.0f", rate);
    rep.add_repeated(label, single);
    rep.field("rate_tps", rate);
  }
  fig2a.print();
  std::printf("\n  abort breakdown over the sweep (claim C1: overload-manager "
              "aborts dominate past the knee):\n");
  print_breakdown("two-node:", two_total);
  print_breakdown("single-node:", single_total);

  // ---------------- Fig 2(b): miss ratio vs write fraction @300 tps -----
  std::printf("\n--- Fig 2(b): arrival rate 300 txn/s, sweep write fraction ---\n");
  exp::SeriesPrinter fig2b("write-frac",
                           {"two-node miss", "single-node miss"});
  double two_min = 1, two_max = 0;
  for (double wf : {0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0}) {
    auto two = run_config(workload::PaperSetup::two_node(true), 300.0, wf, args);
    auto single = run_config(workload::PaperSetup::single_node(true), 300.0, wf, args);
    fig2b.add_row(wf, {two.miss_ratio.mean(), single.miss_ratio.mean()});
    two_min = std::min(two_min, two.miss_ratio.mean());
    two_max = std::max(two_max, two.miss_ratio.mean());
    char label[48];
    std::snprintf(label, sizeof label, "fig2b two-node wf=%.1f", wf);
    rep.add_repeated(label, two);
    rep.field("write_fraction", wf);
    std::snprintf(label, sizeof label, "fig2b single-node wf=%.1f", wf);
    rep.add_repeated(label, single);
    rep.field("write_fraction", wf);
  }
  fig2b.print();
  std::printf("\n  claim C2 (write-ratio effect is small for the two-node "
              "system): miss ratio spans %.3f..%.3f across 0..100%% writes\n",
              two_min, two_max);
  rep.set("fig2b_two_node_miss_min", two_min);
  rep.set("fig2b_two_node_miss_max", two_max);
  rep.write_file();
  return 0;
}
