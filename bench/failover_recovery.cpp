// Claims C4 and C5 (paper §2/§4):
//
//   C4 "the Mirror Node can almost instantaneously serve incoming requests"
//      versus recovering a lone node from the disk backup: we measure the
//      failover gap (watchdog detection + takeover activation) against the
//      modelled time to reload a checkpoint and replay the log tail from a
//      late-1990s disk.
//
//   C5 "a sequential failure of both nodes does not lose data, if the time
//      difference between the failures is large enough for the Mirror Node
//      to store the buffered logs to the disk": we crash the primary, then
//      crash the survivor after an increasing gap and count committed
//      transactions that were not yet durable on its disk.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "rodain/exp/args.hpp"
#include "rodain/exp/report.hpp"
#include "rodain/exp/session.hpp"
#include "rodain/log/recovery.hpp"
#include "rodain/log/segment.hpp"
#include "rodain/rt/node.hpp"
#include "rodain/storage/checkpoint.hpp"

using namespace rodain;
using namespace rodain::literals;

namespace {

// ---------------------------------------------------------------- C4 ----

void measure_failover(const exp::BenchArgs& args, exp::BenchReport& rep) {
  std::printf("--- C4a: failover gap vs watchdog timeout (two-node, 200 txn/s) ---\n");
  exp::SeriesPrinter printer("watchdog[ms]", {"failover gap [ms]"});
  for (double timeout_ms : {50.0, 100.0, 200.0, 500.0, 1000.0}) {
    sim::Simulation sim;
    auto cluster_config = workload::PaperSetup::two_node(true);
    cluster_config.node.watchdog_timeout = Duration::millis_f(timeout_ms);
    cluster_config.node.heartbeat_interval = Duration::millis_f(timeout_ms / 4);
    simdb::SimCluster cluster(sim, cluster_config);
    auto db = workload::PaperSetup::database();
    cluster.populate([&](storage::ObjectStore& s, storage::BPlusTree& i) {
      workload::load_database(db, s, i);
    });
    cluster.start();
    auto trace = workload::Trace::generate(db, workload::PaperSetup::workload(0.5),
                                           200.0, args.txns / 2, args.seed);
    for (const auto& e : trace.entries()) {
      sim.schedule_after(e.offset, [&cluster, &e] {
        cluster.submit(e.program, {});
      });
    }
    sim.schedule_at(TimePoint{2'000'000}, [&] { cluster.fail_node(cluster.node_a()); });
    sim.run_until(TimePoint::origin() + trace.duration() + 5_s);
    const double gap_ms = cluster.last_failover_gap()
                              ? cluster.last_failover_gap()->to_ms()
                              : -1.0;
    printer.add_row(timeout_ms, {gap_ms});
    char label[48];
    std::snprintf(label, sizeof label, "C4a watchdog=%.0fms", timeout_ms);
    rep.begin_result(label);
    rep.field("watchdog_ms", timeout_ms);
    rep.field("failover_gap_ms", gap_ms);
  }
  printer.print();
}

void measure_recovery(const exp::BenchArgs& args, exp::BenchReport& rep) {
  (void)args;
  std::printf("\n--- C4b: lone-node restart from disk backup (checkpoint + log replay) ---\n");
  exp::SeriesPrinter printer("objects",
                             {"ckpt[MB]", "1998-disk load [ms]",
                              "replay cpu [ms]", "total restart [ms]"});
  const auto dir = std::filesystem::temp_directory_path() / "rodain_recovery_bench";
  std::filesystem::create_directories(dir);
  for (std::size_t objects : {10000uz, 30000uz, 100000uz}) {
    workload::DatabaseConfig db;
    db.num_objects = objects;
    storage::ObjectStore store(objects);
    storage::BPlusTree index;
    workload::load_database(db, store, index);

    const std::string ckpt_path = (dir / "db.ckpt").string();
    const std::string log_path = (dir / "tail.log").string();
    std::filesystem::remove(log_path);
    (void)storage::write_checkpoint_file(store, 0, ckpt_path);
    // A plausible log tail: ~2000 committed update txns since the checkpoint.
    {
      auto log_file = log::FileLogStorage::open(log_path);
      Rng rng(7);
      for (ValidationTs seq = 1; seq <= 2000; ++seq) {
        for (int w = 0; w < 2; ++w) {
          storage::Value v{std::string_view{"updated-payload-bytes-0123456789", 32}};
          log_file.value()->append(log::Record::write_image(
              seq, workload::oid_for(rng.next_below(objects)), v));
        }
        log_file.value()->append(log::Record::commit(seq, seq, seq * cc::kTsSpacing, 2));
      }
      log_file.value()->flush({});
    }

    const auto ckpt_bytes = std::filesystem::file_size(ckpt_path);
    const auto log_bytes = std::filesystem::file_size(log_path);

    // Actual replay work (CPU), measured on this machine.
    storage::ObjectStore recovered(objects);
    const auto t0 = std::chrono::steady_clock::now();
    auto meta = storage::read_checkpoint_file(ckpt_path, recovered);
    auto stats = log::recover_from_file(log_path, recovered,
                                        meta.is_ok() ? meta.value().last_applied : 0);
    const auto t1 = std::chrono::steady_clock::now();
    const double cpu_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (!stats.is_ok()) {
      std::printf("recovery failed: %s\n", stats.status().to_string().c_str());
      continue;
    }
    // Modelled sequential load from the paper's disk (~4 MB/s + seeks).
    const double disk_ms =
        (static_cast<double>(ckpt_bytes + log_bytes) / (4.0 * 1024 * 1024)) * 1e3 +
        2 * 8.0;
    printer.add_row(static_cast<double>(objects),
                    {static_cast<double>(ckpt_bytes) / (1024.0 * 1024.0),
                     disk_ms, cpu_ms, disk_ms + cpu_ms});
    char label[48];
    std::snprintf(label, sizeof label, "C4b restart objects=%zu", objects);
    rep.begin_result(label);
    rep.field("objects", static_cast<std::int64_t>(objects));
    rep.field("checkpoint_mb",
              static_cast<double>(ckpt_bytes) / (1024.0 * 1024.0));
    rep.field("disk_load_ms", disk_ms);
    rep.field("replay_cpu_ms", cpu_ms);
    rep.field("total_restart_ms", disk_ms + cpu_ms);
  }
  printer.print();
  std::printf("  => a mirror takeover (~watchdog timeout, 50-1000 ms above) "
              "replaces seconds of disk reload (claim C4).\n");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------- C5 ----

void measure_sequential_failure(const exp::BenchArgs& args,
                                exp::BenchReport& rep) {
  std::printf("\n--- C5: committed-but-lost txns vs gap between the two failures ---\n");
  struct DiskCase {
    const char* name;
    Duration seek;
    double throughput;
  };
  const DiskCase disks[] = {
      {"paper disk (8ms, 4MB/s)", Duration::millis(8), 4.0 * 1024 * 1024},
      {"slow disk (40ms, 0.5MB/s)", Duration::millis(40), 0.5 * 1024 * 1024},
  };
  for (const DiskCase& disk : disks) {
    std::printf("  %s:\n", disk.name);
    exp::SeriesPrinter printer("gap[ms]", {"lost committed txns", "mirror backlog@t1"});
    for (double gap_ms : {0.0, 5.0, 20.0, 50.0, 200.0, 1000.0}) {
      sim::Simulation sim;
      auto cluster_config = workload::PaperSetup::two_node(true);
      cluster_config.node.disk.seek_time = disk.seek;
      cluster_config.node.disk.throughput_bytes_per_sec = disk.throughput;
      simdb::SimCluster cluster(sim, cluster_config);
      auto db = workload::PaperSetup::database();
      cluster.populate([&](storage::ObjectStore& s, storage::BPlusTree& i) {
        workload::load_database(db, s, i);
      });
      cluster.start();
      auto trace = workload::Trace::generate(
          db, workload::PaperSetup::workload(0.5), 250.0, args.txns / 2, args.seed);
      for (const auto& e : trace.entries()) {
        sim.schedule_after(e.offset, [&cluster, &e] { cluster.submit(e.program, {}); });
      }

      const TimePoint t1{3'000'000};
      std::uint64_t backlog_at_t1 = 0;
      std::uint64_t lost = 0;
      ValidationTs acked_boundary = 0;
      sim.schedule_at(t1, [&] {
        if (auto* d = dynamic_cast<log::SimDiskLogStorage*>(cluster.node_b().disk())) {
          backlog_at_t1 = d->backlog();
        }
        if (auto* m = cluster.node_b().mirror_service()) {
          // Transactions the mirror acknowledged while A was alive: these
          // committed on the primary's side and exist only in B's memory
          // until the disk flush catches up.
          acked_boundary = m->applied_seq() + m->reorder_staged();
        }
        cluster.fail_node(cluster.node_a());
      });
      sim.schedule_at(t1 + Duration::millis_f(gap_ms), [&] {
        // Second failure: mirror-acked commits that the survivor has not
        // flushed yet are committed data lost. (Post-takeover commits wait
        // for their own flush, so an un-flushed suffix of those is merely
        // uncommitted, not lost.)
        auto* d = dynamic_cast<log::SimDiskLogStorage*>(cluster.node_b().disk());
        if (d) {
          const auto& records = d->records();
          for (std::size_t i = d->durable(); i < records.size(); ++i) {
            lost += records[i].is_commit() && records[i].seq <= acked_boundary;
          }
        }
        cluster.fail_node(cluster.node_b());
      });
      sim.run_until(t1 + Duration::millis_f(gap_ms) + 1_s);
      printer.add_row(gap_ms, {static_cast<double>(lost),
                               static_cast<double>(backlog_at_t1)});
      char label[64];
      std::snprintf(label, sizeof label, "C5 %s gap=%.0fms", disk.name, gap_ms);
      rep.begin_result(label);
      rep.field("gap_ms", gap_ms);
      rep.field("lost_committed_txns", static_cast<std::int64_t>(lost));
      rep.field("mirror_backlog_at_t1",
                static_cast<std::int64_t>(backlog_at_t1));
    }
    printer.print();
  }
  std::printf("  => the loss window closes once the survivor has flushed its "
              "buffered logs (claim C5).\n");
}

// ---------------------------------------------------------------- C6 ----

// Restart time vs committed-transaction count with the segmented log and
// checkpoint-coordinated truncation: as the history grows 10x, periodic
// checkpoints delete covered segments, so both the on-disk log and the
// restart replay stay bounded by the work since the last checkpoint.
void measure_segmented_restart(const exp::BenchArgs& args,
                               exp::BenchReport& rep) {
  std::printf("\n--- C6: segmented-log restart vs committed txns "
              "(checkpoint truncation) ---\n");
  exp::SeriesPrinter printer(
      "txns", {"segments", "truncated", "log[KB]", "recover[ms]", "replayed"});
  const auto dir =
      std::filesystem::temp_directory_path() / "rodain_seglog_bench";
  const std::size_t base = std::max<std::size_t>(args.txns / 10, 200);
  for (const std::size_t txns : {base, base * 3, base * 10}) {
    std::filesystem::remove_all(dir);
    const std::string log_dir = (dir / "log").string();
    const std::string ckpt_path = (dir / "db.ckpt").string();

    workload::DatabaseConfig db;
    db.num_objects = 2000;
    storage::ObjectStore store(db.num_objects + 16);
    storage::BPlusTree index;
    workload::load_database(db, store, index);

    log::SegmentedLogStorage::Options opt;
    opt.segment_bytes = 64 * 1024;
    auto seg = log::SegmentedLogStorage::open(log_dir, opt);
    if (!seg.is_ok()) {
      std::printf("segment dir open failed: %s\n",
                  seg.status().to_string().c_str());
      return;
    }
    log::SegmentedLogStorage& log_store = *seg.value();

    // The paper's write mix, applied and logged: checkpoint every quarter
    // of the run, then truncate segments the checkpoint covers.
    Rng rng(args.seed);
    const std::size_t ckpt_every = txns / 4 + 1;
    std::uint64_t truncated = 0;
    for (ValidationTs seq = 1; seq <= txns; ++seq) {
      for (int w = 0; w < 2; ++w) {
        const ObjectId oid = workload::oid_for(rng.next_below(db.num_objects));
        storage::Value v{
            std::string_view{"updated-payload-bytes-0123456789", 32}};
        log_store.append(log::Record::write_image(seq, oid, v));
        store.upsert(oid, v, seq);
      }
      log_store.append(log::Record::commit(seq, seq, seq * cc::kTsSpacing, 2));
      if (seq % 64 == 0) log_store.flush({});
      if (seq % ckpt_every == 0) {
        log_store.flush({});
        (void)storage::write_checkpoint_file(store, seq, ckpt_path);
        truncated += log_store.truncate_upto(seq);
      }
    }
    log_store.flush({});
    const std::uint64_t log_bytes = log_store.disk_bytes();
    const std::size_t segments = log_store.segment_count();

    // Cold restart: checkpoint + surviving segments only.
    storage::ObjectStore recovered(db.num_objects + 16);
    storage::BPlusTree rec_index;
    const auto t0 = std::chrono::steady_clock::now();
    auto stats = log::recover_checkpoint_and_segments(ckpt_path, log_dir,
                                                      recovered, &rec_index);
    const auto t1 = std::chrono::steady_clock::now();
    const double recover_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (!stats.is_ok()) {
      std::printf("segmented recovery failed: %s\n",
                  stats.status().to_string().c_str());
      return;
    }
    printer.add_row(static_cast<double>(txns),
                    {static_cast<double>(segments),
                     static_cast<double>(truncated),
                     static_cast<double>(log_bytes) / 1024.0, recover_ms,
                     static_cast<double>(stats.value().committed_applied)});
    char label[48];
    std::snprintf(label, sizeof label, "C6 restart txns=%zu", txns);
    rep.begin_result(label);
    rep.field("committed_txns", static_cast<std::int64_t>(txns));
    rep.field("segments_live", static_cast<std::int64_t>(segments));
    rep.field("segments_truncated", static_cast<std::int64_t>(truncated));
    rep.field("log_disk_bytes", static_cast<std::int64_t>(log_bytes));
    rep.field("recovery_replay_ms", recover_ms);
    rep.field("txns_replayed",
              static_cast<std::int64_t>(stats.value().committed_applied));
  }
  printer.print();
  std::printf("  => checkpoint truncation keeps the surviving log (and so the "
              "restart replay) bounded as history grows 10x.\n");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------- C7 ----

// Availability flight recorder: the same outages as C4, but measured by the
// AvailabilityTimeline — downtime per outage plus time-to-first-commit,
// anchored at the moment service was lost (the client-observed gap).
void measure_availability_timeline(const exp::BenchArgs& args,
                                   exp::BenchReport& rep) {
  std::printf("\n--- C7: availability flight recorder "
              "(downtime + time to first commit) ---\n");

  // Kill -> takeover on the virtual timeline: fully deterministic, so the
  // downtime and time-to-first-commit fields gate the trend check.
  {
    sim::Simulation sim;
    auto cluster_config = workload::PaperSetup::two_node(true);
    simdb::SimCluster cluster(sim, cluster_config);
    auto db = workload::PaperSetup::database();
    cluster.populate([&](storage::ObjectStore& s, storage::BPlusTree& i) {
      workload::load_database(db, s, i);
    });
    cluster.start();
    auto trace = workload::Trace::generate(
        db, workload::PaperSetup::workload(0.5), 300.0, args.txns, args.seed);
    for (const auto& e : trace.entries()) {
      sim.schedule_after(e.offset,
                         [&cluster, &e] { cluster.submit(e.program, {}); });
    }
    // Kill the primary halfway through the trace so the surviving half of
    // the load exercises the takeover primary (and stamps the outage's
    // time-to-first-commit).
    const TimePoint fail_at =
        TimePoint::origin() + Duration::micros(trace.duration().us / 2);
    sim.schedule_at(fail_at, [&] { cluster.fail_node(cluster.node_a()); });
    sim.run_until(TimePoint::origin() + trace.duration() + 5_s);

    const obs::AvailabilityTimeline& avail = cluster.availability();
    const double downtime_ms =
        static_cast<double>(avail.last_downtime_us(sim.now().us)) / 1000.0;
    const double ttfc_ms =
        avail.outages().empty()
            ? -1.0
            : static_cast<double>(
                  avail.outages().back().time_to_first_commit_us) /
                  1000.0;
    std::printf("  kill->takeover: outages=%zu downtime=%.2f ms "
                "time-to-first-commit=%.2f ms\n",
                avail.outages().size(), downtime_ms, ttfc_ms);
    rep.begin_result("C7 avail_kill_takeover");
    rep.field("outages", static_cast<std::int64_t>(avail.outages().size()));
    rep.field("downtime_ms", downtime_ms);
    rep.field("time_to_first_commit_ms", ttfc_ms);
    rep.field("total_downtime_ms", cluster.total_downtime().to_ms());
  }

  // Restart -> recovery on a real node: the outage opens when local
  // recovery starts and closes at the first post-restart commit. Wall
  // clock, so informational (not trend-gated).
  {
    const auto dir =
        std::filesystem::temp_directory_path() / "rodain_avail_bench";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    rt::NodeConfig config;
    config.log_path = (dir / "log").string();
    config.log_segment_bytes = 256 * 1024;
    config.checkpoint_path = (dir / "db.ckpt").string();
    const storage::Value zeros{std::string_view{"\0\0\0\0\0\0\0\0", 8}};
    {
      rt::Node node(config, "avail-gen1");
      node.store().upsert(1, zeros, 0);
      node.start_primary(LogMode::kDirectDisk);
      for (int i = 0; i < 200; ++i) {
        txn::TxnProgram p;
        p.add_to_field(1, 0, 1);
        p.relative_deadline = 5_s;
        node.execute(std::move(p));
      }
      node.stop();
    }
    rt::Node node(config, "avail-gen2");
    node.store().upsert(1, zeros, 0);
    auto stats = node.recover_from_local_state();
    if (!stats.is_ok()) {
      std::printf("  restart recovery failed: %s\n",
                  stats.status().to_string().c_str());
      std::filesystem::remove_all(dir);
      return;
    }
    node.start_primary(LogMode::kDirectDisk);
    txn::TxnProgram p;
    p.add_to_field(1, 0, 1);
    p.relative_deadline = 5_s;
    node.execute(std::move(p));
    const obs::AvailabilityTimeline avail = node.availability();
    const double downtime_ms =
        static_cast<double>(avail.last_downtime_us(0)) / 1000.0;
    const double ttfc_ms =
        static_cast<double>(avail.last_time_to_first_commit_us()) / 1000.0;
    std::printf("  restart->recovery: %llu txns replayed, downtime=%.2f ms "
                "time-to-first-commit=%.2f ms\n",
                static_cast<unsigned long long>(stats.value().committed_applied),
                downtime_ms, ttfc_ms);
    rep.begin_result("C7 avail_restart_recovery");
    rep.field("txns_replayed",
              static_cast<std::int64_t>(stats.value().committed_applied));
    rep.field("downtime_ms", downtime_ms);
    rep.field("time_to_first_commit_ms", ttfc_ms);
    node.stop();
    std::filesystem::remove_all(dir);
  }
  std::printf("  => every outage carries its downtime and time-to-first-"
              "commit in BENCH_failover_recovery.json.\n");
}

// ---------------------------------------------------------------- C8 ----

// Instant restart (DESIGN.md §12): index the surviving log instead of
// replaying it, serve after the bare activation delay, and drain the
// deferred chains on first touch + background sweeps. Time-to-first-commit
// stays roughly flat as the log grows 10x, while the classical full replay
// grows linearly with it — and the instantly-restarted node commits real
// transactions during the whole window the classical node is still silent.
// Entirely on the virtual timeline, so every field is deterministic and
// trend-gated.
void measure_instant_restart(const exp::BenchArgs& args, exp::BenchReport& rep) {
  std::printf("\n--- C8: instant restart vs full replay "
              "(time to first commit) ---\n");
  exp::SeriesPrinter printer(
      "txns", {"instant ttfc[ms]", "full ttfc[ms]", "commits@window",
               "deferred", "ondemand", "background"});
  const std::size_t base = std::max<std::size_t>(args.txns / 10, 200);
  struct ModeResult {
    double ttfc_ms{-1.0};
    double window_ms{0.0};
    std::uint64_t commits_in_window{0};
    std::uint64_t replayable{0};
    std::uint64_t deferred{0};
    std::uint64_t ondemand{0};
    std::uint64_t background{0};
  };
  for (const std::size_t txns : {base, base * 3, base * 10}) {
    auto run_mode = [&](bool instant) {
      ModeResult out;
      sim::Simulation sim;
      simdb::SimNodeConfig cfg;
      // Group-committed fast-ish disk so populating the log dominates
      // neither the virtual nor the real runtime; no checkpoint cadence,
      // so the whole history survives the crash (the point: the log grows).
      cfg.disk.coalesce_flushes = true;
      cfg.disk.seek_time = Duration::micros(100);
      cfg.instant_recovery = instant;
      simdb::SimNode node(sim, instant ? "instant" : "full", 1, cfg);
      workload::DatabaseConfig db;
      db.num_objects = 2000;
      workload::load_database(db, node.store(), node.index());
      node.start_as_primary(LogMode::kDirectDisk);

      // Populate: `txns` single-update transactions, one every 500us.
      Rng rng(args.seed);
      for (std::size_t i = 0; i < txns; ++i) {
        const ObjectId oid = workload::oid_for(rng.next_below(db.num_objects));
        sim.schedule_after(
            Duration::micros(500) * static_cast<std::int64_t>(i),
            [&node, oid] {
              txn::TxnProgram p;
              p.add_to_field(oid, 0, 1);
              p.relative_deadline = 5_s;
              node.submit(std::move(p), {});
            });
      }
      const TimePoint restart_at =
          TimePoint::origin() +
          Duration::micros(500) * static_cast<std::int64_t>(txns) + 2_s;
      TimePoint first_commit = TimePoint::max();
      Duration window = Duration::zero();
      Rng probe_rng(args.seed + 1);
      sim.schedule_at(restart_at, [&] {
        node.fail();
        const auto rstats = node.restart_from_disk(LogMode::kDirectDisk);
        out.replayable = rstats.replayable_txns;
        out.deferred = rstats.deferred_txns;
        // The comparison window: how long the classical replay keeps this
        // log's node silent. Probe with client load every 200us across it
        // (plus slack) — submissions while not serving are rejected, so
        // the first *committed* probe stamps the time to first commit.
        window = cfg.takeover_activation +
                 cfg.replay_cost_per_txn *
                     static_cast<std::int64_t>(rstats.replayable_txns);
        const std::size_t probes =
            static_cast<std::size_t>(window.us / 200) + 64;
        for (std::size_t k = 0; k < probes; ++k) {
          const ObjectId oid =
              workload::oid_for(probe_rng.next_below(db.num_objects));
          sim.schedule_after(
              Duration::micros(100 + 200 * static_cast<std::int64_t>(k)),
              [&, oid] {
                txn::TxnProgram p;
                p.add_to_field(oid, 0, 1);
                p.relative_deadline = 5_s;
                node.submit(std::move(p), [&](const simdb::TxnResult& r) {
                  if (r.outcome != TxnOutcome::kCommitted) return;
                  if (r.finish < first_commit) first_commit = r.finish;
                  if (r.finish - restart_at <= window) ++out.commits_in_window;
                });
              });
        }
      });
      sim.run_until(restart_at + 30_s);
      out.window_ms = window.to_ms();
      if (first_commit != TimePoint::max()) {
        out.ttfc_ms = (first_commit - restart_at).to_ms();
      }
      if (auto* r = node.recovery()) {
        out.ondemand = r->ondemand_applied();
        out.background = r->background_applied();
      }
      return out;
    };
    const ModeResult inst = run_mode(true);
    const ModeResult full = run_mode(false);
    printer.add_row(static_cast<double>(txns),
                    {inst.ttfc_ms, full.ttfc_ms,
                     static_cast<double>(inst.commits_in_window),
                     static_cast<double>(inst.deferred),
                     static_cast<double>(inst.ondemand),
                     static_cast<double>(inst.background)});
    const double window_s = inst.window_ms / 1000.0;
    char label[48];
    std::snprintf(label, sizeof label, "C8 instant_restart txns=%zu", txns);
    rep.begin_result(label);
    rep.field("committed_txns", static_cast<std::int64_t>(inst.replayable));
    rep.field("time_to_first_commit_ms", inst.ttfc_ms);
    rep.field("full_replay_ttfc_ms", full.ttfc_ms);
    rep.field("recovery_window_ms", inst.window_ms);
    rep.field("commits_during_recovery",
              static_cast<std::int64_t>(inst.commits_in_window));
    rep.field("throughput_during_recovery",
              window_s > 0.0
                  ? static_cast<double>(inst.commits_in_window) / window_s
                  : 0.0);
    rep.field("deferred_txns", static_cast<std::int64_t>(inst.deferred));
    rep.field("ondemand_replays", static_cast<std::int64_t>(inst.ondemand));
    rep.field("background_replays", static_cast<std::int64_t>(inst.background));
  }
  printer.print();
  std::printf("  => serving starts at the activation delay regardless of log "
              "size; the classical replay window grows with it (claim C8).\n");
}

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchArgs args = exp::BenchArgs::parse(argc, argv);
  exp::BenchReport rep("failover_recovery");
  rep.set("txns", static_cast<std::int64_t>(args.txns));
  rep.set("seed", static_cast<std::int64_t>(args.seed));
  std::printf("=== Availability study: failover (C4) and sequential-failure "
              "loss window (C5) ===\n\n");
  measure_failover(args, rep);
  measure_recovery(args, rep);
  measure_sequential_failure(args, rep);
  measure_segmented_restart(args, rep);
  measure_availability_timeline(args, rep);
  measure_instant_restart(args, rep);
  rep.write_file();
  return 0;
}
