// Ablation 3: the overload manager (paper §2).
//
// Under sustained overload (400 txn/s against a ~230 txn/s CPU) we sweep
// the active-transaction cap and toggle the miss-window feedback. Without a
// cap every admitted transaction queues until its deadline and almost
// nothing finishes; with the cap the node sheds arrivals cheaply at
// admission and the admitted ones commit on time — which is exactly why the
// paper observes "most of the unsuccessfully executed (=missed)
// transactions are due to abortions by overload manager" past the knee.
#include <cstdio>

#include "rodain/exp/args.hpp"
#include "rodain/exp/report.hpp"
#include "rodain/exp/session.hpp"

using namespace rodain;

namespace {

void run_point(std::size_t cap, bool feedback, const exp::BenchArgs& args,
               exp::BenchReport& rep) {
  exp::SessionConfig config;
  config.cluster = workload::PaperSetup::no_logging();
  config.cluster.node.overload.max_active = cap;
  config.cluster.node.overload.miss_feedback = feedback;
  config.database = workload::PaperSetup::database();
  config.workload = workload::PaperSetup::workload(0.5);
  config.arrival_rate_tps = 400.0;
  config.txn_count = args.txns;
  config.seed = args.seed;
  auto result = exp::run_repeated(config, args.reps);
  const auto& t = result.totals;
  const double committed_share =
      static_cast<double>(t.committed) / static_cast<double>(t.submitted);
  std::printf("%-8zu  %-9s  %-10.4f  %-11.4f  %-10.4f  %-10.4f  %-12.3f\n", cap,
              feedback ? "on" : "off", result.miss_ratio.mean(),
              committed_share,
              static_cast<double>(t.overload_rejected) /
                  static_cast<double>(t.submitted),
              static_cast<double>(t.missed_deadline) /
                  static_cast<double>(t.submitted),
              result.commit_latency_ms.mean());
  char label[48];
  std::snprintf(label, sizeof label, "cap=%zu feedback=%s", cap,
                feedback ? "on" : "off");
  rep.add_repeated(label, result);
  rep.field("cap", static_cast<std::int64_t>(cap));
  rep.field("feedback", feedback ? "on" : "off");
  rep.field("committed_share", committed_share);
}

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchArgs args = exp::BenchArgs::parse(argc, argv);
  exp::BenchReport rep("overload_manager");
  rep.set("txns", static_cast<std::int64_t>(args.txns));
  rep.set("reps", static_cast<std::int64_t>(args.reps));
  rep.set("seed", static_cast<std::int64_t>(args.seed));
  std::printf("=== Ablation 3: overload manager at 400 txn/s (~1.7x the knee) ===\n");
  std::printf("(%zu reps x %zu txns per point)\n\n", args.reps, args.txns);
  std::printf("%-8s  %-9s  %-10s  %-11s  %-10s  %-10s  %-12s\n", "cap",
              "feedback", "miss", "committed", "overload", "deadline",
              "commit[ms]");
  for (std::size_t cap : {5uz, 10uz, 25uz, 50uz, 100uz, 200uz, 100000uz}) {
    run_point(cap, false, args, rep);
  }
  std::printf("\nwith miss-window feedback (cap shrinks under sustained misses):\n");
  for (std::size_t cap : {50uz, 100uz, 200uz, 100000uz}) {
    run_point(cap, true, args, rep);
  }
  std::printf("\n=> a moderate cap (the paper uses 50) converts hopeless "
              "deadline misses into cheap admission-time shedding while "
              "keeping commit latency of admitted work bounded.\n");
  rep.write_file();
  return 0;
}
