// Microbenchmarks: the main-memory storage substrate.
#include <benchmark/benchmark.h>

#include "rodain/common/rng.hpp"
#include "rodain/storage/btree.hpp"
#include "rodain/storage/checkpoint.hpp"
#include "rodain/storage/object_store.hpp"

using namespace rodain;
using storage::IndexKey;
using storage::Value;

namespace {

Value payload(std::size_t n = 48) { return Value{std::string_view{std::string(n, 'x')}}; }

void BM_ObjectStoreInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    storage::ObjectStore store(n);
    for (ObjectId i = 0; i < n; ++i) store.upsert(i, payload(), 0);
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ObjectStoreInsert)->Arg(1000)->Arg(30000);

void BM_ObjectStoreFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  storage::ObjectStore store(n);
  for (ObjectId i = 0; i < n; ++i) store.upsert(i, payload(), 0);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.find(rng.next_below(n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectStoreFind)->Arg(30000)->Arg(1000000);

void BM_ObjectStoreUpdateInPlace(benchmark::State& state) {
  storage::ObjectStore store(30000);
  for (ObjectId i = 0; i < 30000; ++i) store.upsert(i, payload(), 0);
  Rng rng(2);
  Value v = payload();
  for (auto _ : state) {
    store.upsert(rng.next_below(30000), v, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectStoreUpdateInPlace);

void BM_BTreeInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    storage::BPlusTree tree;
    for (std::size_t i = 0; i < n; ++i) {
      tree.insert(IndexKey::from_u64(i * 2654435761u), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(30000);

void BM_BTreeLookup(benchmark::State& state) {
  storage::BPlusTree tree;
  const std::size_t n = 30000;
  for (std::size_t i = 0; i < n; ++i) tree.insert(IndexKey::from_u64(i), i);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(IndexKey::from_u64(rng.next_below(n))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

void BM_BTreeRangeScan100(benchmark::State& state) {
  storage::BPlusTree tree;
  const std::size_t n = 30000;
  for (std::size_t i = 0; i < n; ++i) tree.insert(IndexKey::from_u64(i), i);
  Rng rng(4);
  for (auto _ : state) {
    const std::uint64_t start = rng.next_below(n - 100);
    std::size_t count = 0;
    tree.range_scan(IndexKey::from_u64(start), IndexKey::from_u64(start + 99),
                    [&](const IndexKey&, ObjectId) {
                      ++count;
                      return true;
                    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_BTreeRangeScan100);

void BM_CheckpointEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  storage::ObjectStore store(n);
  for (ObjectId i = 0; i < n; ++i) store.upsert(i, payload(), 0);
  for (auto _ : state) {
    ByteWriter w(n * 80);
    storage::encode_checkpoint(store, 1, w);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckpointEncode)->Arg(30000);

}  // namespace
