// Shared main for the google-benchmark micro benches: unless the caller
// passed --benchmark_out, default to BENCH_<binary>.json so every bench
// run leaves a machine-readable report next to its console table.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }

  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    std::string name = argv[0];
    if (const auto pos = name.find_last_of('/'); pos != std::string::npos) {
      name = name.substr(pos + 1);
    }
    out_flag = "--benchmark_out=BENCH_" + name + ".json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }

  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!out_flag.empty()) {
    std::printf("\n[bench report written to %s]\n",
                out_flag.c_str() + std::strlen("--benchmark_out="));
  }
  return 0;
}
